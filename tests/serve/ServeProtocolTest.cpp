//===- tests/serve/ServeProtocolTest.cpp ----------------------------------===//
//
// The serving stack bottom-up: the hardened JSON reader, the compiled-plan
// LRU cache (hit/miss accounting, key discrimination, eviction, poisoned
// requests never cached), the transport-free request handler, and the
// socket layer end to end over both AF_UNIX and loopback TCP — including
// the framing defenses (oversized frame, garbage JSON, blank lines,
// mid-request disconnects) and cost-model admission control.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "ServeTestUtil.h"
#include "serve/Json.h"
#include "serve/PlanCache.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

using namespace lcdfg;
using namespace lcdfg::serve;
using namespace serve_test;
using support::ErrorCode;

namespace {

//===----------------------------------------------------------------------===//
// Json
//===----------------------------------------------------------------------===//

TEST(ServeJson, ParsesTheProtocolShapes) {
  auto V = parseJson(
      R"({"chain":"text","size":32,"warm":true,"x":null,"arr":[1,2.5,-3e2]})");
  ASSERT_TRUE(bool(V));
  ASSERT_TRUE(V->isObject());
  EXPECT_EQ(V->find("chain")->asString(), "text");
  EXPECT_EQ(V->find("size")->asInt(), 32);
  EXPECT_TRUE(V->find("warm")->asBool());
  EXPECT_TRUE(V->find("x")->isNull());
  ASSERT_TRUE(V->find("arr")->isArray());
  ASSERT_EQ(V->find("arr")->Items.size(), 3u);
  EXPECT_DOUBLE_EQ(V->find("arr")->Items[1].asDouble(), 2.5);
  EXPECT_DOUBLE_EQ(V->find("arr")->Items[2].asDouble(), -300.0);
  EXPECT_EQ(V->find("missing"), nullptr);
}

TEST(ServeJson, DecodesEscapes) {
  auto V = parseJson(R"({"s":"a\"b\\c\nd\t\u0041\u00e9"})");
  ASSERT_TRUE(bool(V));
  EXPECT_EQ(V->find("s")->asString(), "a\"b\\c\nd\tA\xc3\xa9");
}

TEST(ServeJson, EscapeRoundTrips) {
  std::string Hostile = "quote\" slash\\ nl\n tab\t ctrl\x01 done";
  auto V = parseJson("{\"k\":\"" + jsonEscape(Hostile) + "\"}");
  ASSERT_TRUE(bool(V));
  EXPECT_EQ(V->find("k")->asString(), Hostile);
}

TEST(ServeJson, RejectsMalformedInputWithE020) {
  const char *Bad[] = {
      "",           "{",           "{\"a\":}",     "{\"a\":1,}",
      "[1,2",       "\"unterm",    "truu",         "{\"a\" 1}",
      "01x",        "1.2.3",       "{\"a\":1}{\"b\":2}",
      "{\"a\":\"raw\x01ctrl\"}",   "{\"a\":\"\\q\"}",
      "{\"a\":\"\\u12g4\"}",
  };
  for (const char *Text : Bad) {
    auto V = parseJson(Text);
    ASSERT_FALSE(bool(V)) << "accepted: " << Text;
    EXPECT_EQ(V.error().code(), ErrorCode::Protocol) << Text;
  }
}

TEST(ServeJson, DepthBombIsAnErrorNotAStackOverflow) {
  std::string Bomb(4096, '[');
  auto V = parseJson(Bomb);
  ASSERT_FALSE(bool(V));
  EXPECT_EQ(V.error().code(), ErrorCode::Protocol);
  EXPECT_NE(V.error().message().find("nesting"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// PlanCache
//===----------------------------------------------------------------------===//

RequestSpec fig1Spec(std::int64_t Size = 8) {
  RequestSpec Spec;
  Spec.Chain = Fig1Chain;
  Spec.Script = Fig1Script;
  Spec.Size = Size;
  return Spec;
}

TEST(PlanCache, CompileProducesARunnablePlan) {
  auto CP = PlanCache::compile(fig1Spec(8));
  ASSERT_TRUE(bool(CP)) << CP.error().toString();
  EXPECT_TRUE((*CP)->VerifyClean) << (*CP)->VerifyDetail;
  EXPECT_GT((*CP)->StoreBytes, 0);
  EXPECT_GT((*CP)->FallbackBytes, 0);
  EXPECT_EQ((*CP)->AdmitBytes,
            2 * ((*CP)->StoreBytes + (*CP)->FallbackBytes));
  EXPECT_GT((*CP)->TrafficBytes, 0);

  storage::ConcreteStorage Store((*CP)->SPlan, (*CP)->Env);
  (*CP)->seedStore(Store);
  exec::PlanStats Stats = exec::runPlan((*CP)->Plan, (*CP)->Kernels, Store);
  EXPECT_GT(Stats.Seconds, 0.0);
}

TEST(PlanCache, HitMissAndInvariant) {
  PlanCache Cache(4);
  bool Hit = true;
  ASSERT_TRUE(bool(Cache.get(fig1Spec(8), &Hit)));
  EXPECT_FALSE(Hit);
  ASSERT_TRUE(bool(Cache.get(fig1Spec(8), &Hit)));
  EXPECT_TRUE(Hit);
  ASSERT_TRUE(bool(Cache.get(fig1Spec(12), &Hit)));
  EXPECT_FALSE(Hit);

  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Hits, 1);
  EXPECT_EQ(S.Misses, 2);
  EXPECT_EQ(S.Entries, 2);
  EXPECT_EQ(S.Hits + S.Misses, 3);
}

TEST(PlanCache, EveryKeyComponentDiscriminates) {
  PlanCache Cache(64);
  bool Hit = true;
  ASSERT_TRUE(bool(Cache.get(fig1Spec(8), &Hit)));

  RequestSpec Variants[] = {fig1Spec(9), fig1Spec(8), fig1Spec(8),
                            fig1Spec(8), fig1Spec(8), fig1Spec(8)};
  Variants[1].Script.clear();
  Variants[2].Widen = 2;
  Variants[3].Threads = 2;
  Variants[4].Scheduler = exec::SchedulerKind::Wavefront;
  Variants[5].Harden = true;
  for (RequestSpec &Spec : Variants) {
    Hit = true;
    auto CP = Cache.get(Spec, &Hit);
    ASSERT_TRUE(bool(CP)) << CP.error().toString();
    EXPECT_FALSE(Hit) << "variant collided with the base key";
  }

  // Run-only knobs must NOT discriminate: same entry, now a hit.
  RequestSpec RunOnly = fig1Spec(8);
  RunOnly.Batched = false;
  RunOnly.Kernels = exec::KernelMode::Jit;
  RunOnly.MemBudget = 1 << 30;
  RunOnly.Checksum = true;
  Hit = false;
  ASSERT_TRUE(bool(Cache.get(RunOnly, &Hit)));
  EXPECT_TRUE(Hit);
}

TEST(PlanCache, LruEvictsTheColdestEntry) {
  PlanCache Cache(2);
  bool Hit = false;
  ASSERT_TRUE(bool(Cache.get(fig1Spec(8), &Hit)));
  ASSERT_TRUE(bool(Cache.get(fig1Spec(9), &Hit)));
  // Touch 8 so 9 is the LRU victim.
  ASSERT_TRUE(bool(Cache.get(fig1Spec(8), &Hit)));
  EXPECT_TRUE(Hit);
  ASSERT_TRUE(bool(Cache.get(fig1Spec(10), &Hit))); // Evicts 9.
  EXPECT_FALSE(Hit);

  ASSERT_TRUE(bool(Cache.get(fig1Spec(8), &Hit)));
  EXPECT_TRUE(Hit) << "recently-used entry was evicted";
  ASSERT_TRUE(bool(Cache.get(fig1Spec(9), &Hit)));
  EXPECT_FALSE(Hit) << "evicted entry still present";

  CacheStats S = Cache.stats();
  EXPECT_GE(S.Evictions, 2);
  EXPECT_EQ(S.Entries, 2);
}

TEST(PlanCache, FailedCompilesAreNeverCached) {
  PlanCache Cache(4);
  RequestSpec Bad;
  Bad.Chain = "this is not a loop chain";
  bool Hit = true;
  auto R1 = Cache.get(Bad, &Hit);
  ASSERT_FALSE(bool(R1));
  EXPECT_EQ(R1.error().code(), ErrorCode::Parse);
  EXPECT_FALSE(Hit);
  auto R2 = Cache.get(Bad, &Hit);
  ASSERT_FALSE(bool(R2));
  EXPECT_FALSE(Hit) << "a failure must not be served from cache";

  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Misses, 2);
  EXPECT_EQ(S.Entries, 0);
}

TEST(PlanCache, BypassCountsAsMissAndDoesNotFill) {
  PlanCache Cache(4);
  RequestSpec Spec = fig1Spec(8);
  Spec.Bypass = true;
  bool Hit = true;
  ASSERT_TRUE(bool(Cache.get(Spec, &Hit)));
  EXPECT_FALSE(Hit);
  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Misses, 1);
  EXPECT_EQ(S.Entries, 0);

  // And a later cached request compiles again (a second miss).
  Spec.Bypass = false;
  ASSERT_TRUE(bool(Cache.get(Spec, &Hit)));
  EXPECT_FALSE(Hit);
  EXPECT_EQ(Cache.stats().Entries, 1);
}

TEST(PlanCache, ConcurrentMixedTrafficKeepsTheInvariant) {
  PlanCache Cache(8);
  constexpr int Threads = 4, PerThread = 12;
  std::vector<std::thread> Ts;
  std::atomic<int> Failures{0};
  for (int T = 0; T < Threads; ++T)
    Ts.emplace_back([&, T] {
      for (int I = 0; I < PerThread; ++I) {
        bool Hit = false;
        auto CP = Cache.get(fig1Spec(8 + (T + I) % 3), &Hit);
        if (!CP) {
          Failures.fetch_add(1);
          continue;
        }
        storage::ConcreteStorage Store((*CP)->SPlan, (*CP)->Env);
        (*CP)->seedStore(Store);
        exec::runPlan((*CP)->Plan, (*CP)->Kernels, Store);
      }
    });
  for (std::thread &T : Ts)
    T.join();
  EXPECT_EQ(Failures.load(), 0);
  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Hits + S.Misses, Threads * PerThread);
  EXPECT_EQ(S.Entries, 3);
}

//===----------------------------------------------------------------------===//
// Server::processLine (transport-free)
//===----------------------------------------------------------------------===//

class ProcessLineTest : public ::testing::Test {
protected:
  ProcessLineTest() : Srv(ServerOptions{}) {}

  JsonValue process(const std::string &Line, bool *Shutdown = nullptr) {
    std::string Resp = Srv.processLine(Line, Shutdown);
    auto V = parseJson(Resp);
    EXPECT_TRUE(bool(V)) << "unparseable response: " << Resp;
    return V ? *V : JsonValue{};
  }

  Server Srv;
};

TEST_F(ProcessLineTest, PingEchoesId) {
  JsonValue R = process(R"({"cmd":"ping","id":"abc"})");
  EXPECT_TRUE(R.find("ok")->asBool());
  EXPECT_EQ(R.find("id")->asString(), "abc");
  EXPECT_EQ(R.find("cmd")->asString(), "ping");
}

TEST_F(ProcessLineTest, GarbageAndWrongShapesAreE020) {
  const char *Bad[] = {
      "complete garbage",
      "[1,2,3]",
      R"({"cmd":42})",
      R"({"cmd":"no-such-command"})",
      R"({"size":8})",
      R"({"chain":42})",
      R"({"chain":"x","size":"big"})",
      R"({"chain":"x","scheduler":"fifo"})",
      R"({"chain":"x","kernels":"cuda"})",
      R"({"chain":"x","size":0})",
      R"({"chain":"x","size":100000000})",
      R"({"chain":"x","widen":99})",
      R"({"chain":"x","threads":0})",
      R"({"chain":"x","mem_budget":-5})",
      R"({"chain":"x","batched":"yes"})",
  };
  for (const char *Line : Bad) {
    JsonValue R = process(Line);
    EXPECT_FALSE(R.find("ok")->asBool()) << Line;
    ASSERT_NE(R.find("status"), nullptr) << Line;
    EXPECT_EQ(R.find("status")->find("code")->asString(), "E020-protocol")
        << Line;
  }
  ServerStats S = Srv.stats();
  EXPECT_EQ(S.ProtocolErrors, static_cast<std::int64_t>(std::size(Bad)));
  EXPECT_EQ(S.Admitted, 0) << "protocol rejects must not reach the cache";
}

TEST_F(ProcessLineTest, ParseErrorIsE001ScopedToTheRequest) {
  RequestBuilder B;
  B.Chain = "not a chain at all";
  JsonValue R = process(B.line());
  EXPECT_FALSE(R.find("ok")->asBool());
  EXPECT_EQ(R.find("status")->find("code")->asString(), "E001-parse");

  // The daemon still serves the next request.
  JsonValue R2 = process(RequestBuilder{}.line());
  EXPECT_TRUE(R2.find("ok")->asBool()) << Srv.processLine("{\"cmd\":\"stats\"}");
}

TEST_F(ProcessLineTest, BadScriptIsE005) {
  RequestBuilder B;
  B.Script = "fusepc S1 NO_SUCH_STMT\n";
  JsonValue R = process(B.line());
  EXPECT_FALSE(R.find("ok")->asBool());
  EXPECT_EQ(R.find("status")->find("code")->asString(),
            "E005-illegal-transform");
}

TEST_F(ProcessLineTest, RunResponseCarriesReportMetricsAndCost) {
  RequestBuilder B;
  B.Script = Fig1Script;
  B.Size = 16;
  B.Checksum = 1;
  B.Id = "r1";
  JsonValue R = process(B.line());
  ASSERT_TRUE(R.find("ok")->asBool());
  EXPECT_EQ(R.find("id")->asString(), "r1");
  EXPECT_EQ(R.find("cache")->asString(), "miss");

  ASSERT_NE(R.find("report"), nullptr);
  EXPECT_TRUE(R.find("report")->find("completed")->asBool());

  const JsonValue *M = R.find("metrics");
  ASSERT_NE(M, nullptr);
  EXPECT_GT(M->find("seconds")->asDouble(), 0.0);
  EXPECT_GT(M->find("compile_seconds")->asDouble(), 0.0);
  EXPECT_GT(M->find("points")->asInt(), 0);
  EXPECT_GT(M->find("raw_reads")->asInt(), 0);

  const JsonValue *C = R.find("cost");
  ASSERT_NE(C, nullptr);
  EXPECT_FALSE(C->find("sr")->asString().empty());
  EXPECT_GT(C->find("sc")->asInt(), 0);
  EXPECT_GT(C->find("store_bytes")->asInt(), 0);
  EXPECT_GT(C->find("traffic_bytes")->asInt(), 0);

  ASSERT_NE(R.find("result_fnv"), nullptr);
  EXPECT_EQ(R.find("result_fnv")->asString().size(), 16u);

  // Second identical request: a hit, zero compile seconds, identical
  // checksum (the warm-vs-cold bit-identity contract).
  JsonValue R2 = process(B.line());
  EXPECT_EQ(R2.find("cache")->asString(), "hit");
  EXPECT_DOUBLE_EQ(R2.find("metrics")->find("compile_seconds")->asDouble(),
                   0.0);
  EXPECT_EQ(R2.find("result_fnv")->asString(),
            R.find("result_fnv")->asString());

  // Cache-bypassed cold recompile: still bit-identical.
  B.Cache = 0;
  JsonValue R3 = process(B.line());
  EXPECT_EQ(R3.find("cache")->asString(), "miss");
  EXPECT_EQ(R3.find("result_fnv")->asString(),
            R.find("result_fnv")->asString());

  ServerStats S = Srv.stats();
  EXPECT_EQ(S.Admitted, 3);
  EXPECT_EQ(S.Hits + S.Misses, S.Admitted);
}

TEST_F(ProcessLineTest, EveryKnobCombinationStaysBitIdentical) {
  RequestBuilder Base;
  Base.Script = Fig1Script;
  Base.Size = 12;
  Base.Checksum = 1;
  JsonValue R0 = process(Base.line());
  ASSERT_TRUE(R0.find("ok")->asBool());
  std::string Fnv = R0.find("result_fnv")->asString();

  for (const char *Sched : {"list", "wavefront"})
    for (int Threads : {1, 2, 4})
      for (int Batched : {0, 1}) {
        RequestBuilder B = Base;
        B.Scheduler = Sched;
        B.Threads = Threads;
        B.Batched = Batched;
        JsonValue R = process(B.line());
        ASSERT_TRUE(R.find("ok")->asBool())
            << Sched << "/" << Threads << "/" << Batched;
        EXPECT_EQ(R.find("result_fnv")->asString(), Fnv)
            << Sched << "/" << Threads << "/" << Batched;
      }
}

TEST_F(ProcessLineTest, StatsInvariantHoldsUnderMixedTraffic) {
  for (int I = 0; I < 20; ++I) {
    RequestBuilder B;
    B.Size = 8 + I % 4;
    if (I % 5 == 0)
      B.Cache = 0;
    process(B.line());
  }
  process("garbage");
  process(R"({"cmd":"ping"})");

  JsonValue R = process(R"({"cmd":"stats"})");
  const JsonValue *S = R.find("stats");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->find("admitted")->asInt(), 20);
  EXPECT_EQ(S->find("hits")->asInt() + S->find("misses")->asInt(),
            S->find("admitted")->asInt());
  EXPECT_EQ(S->find("protocol_errors")->asInt(), 1);
}

TEST_F(ProcessLineTest, ShutdownRespectsTheOption) {
  bool Shutdown = false;
  JsonValue R = process(R"({"cmd":"shutdown"})", &Shutdown);
  EXPECT_TRUE(R.find("ok")->asBool());
  EXPECT_TRUE(Shutdown);

  ServerOptions Opts;
  Opts.AllowShutdown = false;
  Server Locked(Opts);
  Shutdown = false;
  auto V = parseJson(Locked.processLine(R"({"cmd":"shutdown"})", &Shutdown));
  ASSERT_TRUE(bool(V));
  EXPECT_FALSE(V->find("ok")->asBool());
  EXPECT_FALSE(Shutdown);
}

//===----------------------------------------------------------------------===//
// Sockets end to end
//===----------------------------------------------------------------------===//

TEST(ServeSocket, UnixEndToEnd) {
  ServerOptions Opts;
  Opts.UnixPath = uniqueSocketPath("proto-unix");
  Server Srv(Opts);
  ASSERT_TRUE(Srv.start().isOk());

  auto C = Client::connectUnix(Opts.UnixPath);
  ASSERT_TRUE(bool(C)) << C.error().toString();

  auto Ping = C->request(R"({"cmd":"ping"})");
  ASSERT_TRUE(bool(Ping)) << Ping.error().toString();
  EXPECT_TRUE(Ping->find("ok")->asBool());

  RequestBuilder B;
  B.Script = Fig1Script;
  B.Checksum = 1;
  auto Run = C->request(B.line());
  ASSERT_TRUE(bool(Run)) << Run.error().toString();
  EXPECT_TRUE(Run->find("ok")->asBool());

  Srv.stop();
  EXPECT_FALSE(Srv.running());
}

TEST(ServeSocket, TcpEndToEndWithKernelAssignedPort) {
  ServerOptions Opts;
  Opts.TcpPort = 0;
  Server Srv(Opts);
  ASSERT_TRUE(Srv.start().isOk());
  ASSERT_GT(Srv.port(), 0);

  auto C = Client::connectTcp("127.0.0.1", Srv.port());
  ASSERT_TRUE(bool(C)) << C.error().toString();
  auto Run = C->request(RequestBuilder{}.line());
  ASSERT_TRUE(bool(Run)) << Run.error().toString();
  EXPECT_TRUE(Run->find("ok")->asBool());
  Srv.stop();
}

TEST(ServeSocket, MalformedFrameKeepsTheConnectionAlive) {
  ServerOptions Opts;
  Opts.UnixPath = uniqueSocketPath("proto-malformed");
  Server Srv(Opts);
  ASSERT_TRUE(Srv.start().isOk());

  auto C = Client::connectUnix(Opts.UnixPath);
  ASSERT_TRUE(bool(C));
  auto Bad = C->request("}{ not json");
  ASSERT_TRUE(bool(Bad));
  EXPECT_FALSE(Bad->find("ok")->asBool());
  EXPECT_EQ(Bad->find("status")->find("code")->asString(), "E020-protocol");

  // Same connection serves the next, valid request.
  auto Good = C->request(RequestBuilder{}.line());
  ASSERT_TRUE(bool(Good)) << Good.error().toString();
  EXPECT_TRUE(Good->find("ok")->asBool());
  Srv.stop();
}

TEST(ServeSocket, OversizedFrameGetsE020ThenTheConnectionCloses) {
  ServerOptions Opts;
  Opts.UnixPath = uniqueSocketPath("proto-oversize");
  Opts.MaxLineBytes = 4096;
  Server Srv(Opts);
  ASSERT_TRUE(Srv.start().isOk());

  auto C = Client::connectUnix(Opts.UnixPath);
  ASSERT_TRUE(bool(C));
  std::string Huge(64 * 1024, 'x');
  ASSERT_TRUE(C->sendLine(Huge).isOk());
  auto Resp = C->recvLine(5000);
  ASSERT_TRUE(bool(Resp)) << Resp.error().toString();
  auto V = parseJson(*Resp);
  ASSERT_TRUE(bool(V));
  EXPECT_EQ(V->find("status")->find("code")->asString(), "E020-protocol");

  // The connection is gone afterwards; a fresh one still works.
  auto Dead = C->recvLine(2000);
  EXPECT_FALSE(bool(Dead));
  auto C2 = Client::connectUnix(Opts.UnixPath);
  ASSERT_TRUE(bool(C2));
  auto Ping = C2->request(R"({"cmd":"ping"})");
  ASSERT_TRUE(bool(Ping));
  EXPECT_TRUE(Ping->find("ok")->asBool());
  Srv.stop();
}

TEST(ServeSocket, MidRequestDisconnectLeavesTheServerServing) {
  ServerOptions Opts;
  Opts.UnixPath = uniqueSocketPath("proto-disconnect");
  Opts.IdleTimeoutMs = 500;
  Server Srv(Opts);
  ASSERT_TRUE(Srv.start().isOk());

  {
    auto C = Client::connectUnix(Opts.UnixPath);
    ASSERT_TRUE(bool(C));
    // Half a request, no newline, then vanish.
    ASSERT_TRUE(C->sendRaw(R"({"chain":"#pragma omp)").isOk());
    C->closeNow();
  }
  {
    // A whole request frame, disconnect before reading the response.
    auto C = Client::connectUnix(Opts.UnixPath);
    ASSERT_TRUE(bool(C));
    ASSERT_TRUE(C->sendLine(RequestBuilder{}.line()).isOk());
    C->closeNow();
  }

  auto C = Client::connectUnix(Opts.UnixPath);
  ASSERT_TRUE(bool(C));
  auto Run = C->request(RequestBuilder{}.line());
  ASSERT_TRUE(bool(Run)) << Run.error().toString();
  EXPECT_TRUE(Run->find("ok")->asBool());
  Srv.stop();
}

TEST(ServeSocket, SlowLorisPartialLineIsCutOffAtTheIdleDeadline) {
  ServerOptions Opts;
  Opts.UnixPath = uniqueSocketPath("proto-loris");
  Opts.IdleTimeoutMs = 400;
  Server Srv(Opts);
  ASSERT_TRUE(Srv.start().isOk());

  auto C = Client::connectUnix(Opts.UnixPath);
  ASSERT_TRUE(bool(C));
  ASSERT_TRUE(C->sendRaw("{\"chain\":\"dribble").isOk());
  // Never send the newline; the server must hang up, not hang.
  auto R = C->recvLine(5000);
  ASSERT_FALSE(bool(R));
  EXPECT_EQ(R.error().code(), ErrorCode::PeerLost);

  auto C2 = Client::connectUnix(Opts.UnixPath);
  ASSERT_TRUE(bool(C2));
  auto Ping = C2->request(R"({"cmd":"ping"})");
  ASSERT_TRUE(bool(Ping));
  EXPECT_TRUE(Ping->find("ok")->asBool());
  Srv.stop();
}

TEST(ServeSocket, ShutdownCommandStopsTheServer) {
  ServerOptions Opts;
  Opts.UnixPath = uniqueSocketPath("proto-shutdown");
  Server Srv(Opts);
  ASSERT_TRUE(Srv.start().isOk());

  auto C = Client::connectUnix(Opts.UnixPath);
  ASSERT_TRUE(bool(C));
  auto R = C->request(R"({"cmd":"shutdown"})");
  ASSERT_TRUE(bool(R));
  EXPECT_TRUE(R->find("ok")->asBool());
  Srv.wait();
  Srv.stop();
  EXPECT_FALSE(Srv.running());
}

TEST(ServeSocket, AdmissionRejectsANeverFittingRequestWithE016) {
  ServerOptions Opts;
  Opts.UnixPath = uniqueSocketPath("proto-admission");
  Opts.BudgetBytes = 1024; // Far below any real request's charge.
  Server Srv(Opts);
  ASSERT_TRUE(Srv.start().isOk());

  auto C = Client::connectUnix(Opts.UnixPath);
  ASSERT_TRUE(bool(C));
  RequestBuilder B;
  B.Size = 64;
  auto R = C->request(B.line());
  ASSERT_TRUE(bool(R)) << R.error().toString();
  EXPECT_FALSE(R->find("ok")->asBool());
  const JsonValue *St = R->find("status");
  ASSERT_NE(St, nullptr);
  EXPECT_EQ(St->find("code")->asString(), "E016-mem-budget-infeasible");
  EXPECT_EQ(St->find("subcode")->asString(), "serve-admission");

  EXPECT_EQ(Srv.stats().Rejected, 1);
  Srv.stop();
}

TEST(ServeSocket, ConcurrentClientsAllGetBitIdenticalResults) {
  ServerOptions Opts;
  Opts.UnixPath = uniqueSocketPath("proto-concurrent");
  Server Srv(Opts);
  ASSERT_TRUE(Srv.start().isOk());

  RequestBuilder B;
  B.Script = Fig1Script;
  B.Size = 24;
  B.Checksum = 1;
  std::string Line = B.line();

  constexpr int NumClients = 6;
  std::vector<std::string> Fnv(NumClients);
  std::vector<std::thread> Ts;
  for (int I = 0; I < NumClients; ++I)
    Ts.emplace_back([&, I] {
      auto C = Client::connectUnix(Opts.UnixPath);
      if (!C)
        return;
      for (int Rep = 0; Rep < 3; ++Rep) {
        auto R = C->request(Line, 30000);
        if (!R || !R->find("ok")->asBool())
          return;
        std::string F = R->find("result_fnv")->asString();
        if (!Fnv[static_cast<std::size_t>(I)].empty() &&
            Fnv[static_cast<std::size_t>(I)] != F)
          return; // Mismatch: leave empty-handed for the assert below.
        Fnv[static_cast<std::size_t>(I)] = F;
      }
    });
  for (std::thread &T : Ts)
    T.join();

  for (int I = 0; I < NumClients; ++I) {
    ASSERT_FALSE(Fnv[static_cast<std::size_t>(I)].empty())
        << "client " << I << " failed";
    EXPECT_EQ(Fnv[static_cast<std::size_t>(I)], Fnv[0]);
  }
  ServerStats S = Srv.stats();
  EXPECT_EQ(S.Admitted, NumClients * 3);
  EXPECT_EQ(S.Hits + S.Misses, S.Admitted);
  Srv.stop();
}

} // namespace
