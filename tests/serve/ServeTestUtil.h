//===- tests/serve/ServeTestUtil.h - Shared serve-test plumbing -*- C++ -*-===//
//
// Chain corpus, request builders, and collision-free socket paths shared
// by the protocol, fault, and soak suites. Every helper is deterministic;
// socket paths fold in the pid and an atomic counter so suites running
// concurrently (ctest -j, --repeat) never race on a bind.
//
//===----------------------------------------------------------------------===//

#ifndef LCDFG_TESTS_SERVE_SERVETESTUTIL_H
#define LCDFG_TESTS_SERVE_SERVETESTUTIL_H

#include "serve/Server.h"

#include <atomic>
#include <string>
#include <unistd.h>

namespace serve_test {

inline const char *Fig1Chain = R"(
#pragma omplc parallel(fuse)
{
#pragma omplc for domain(0:N, 0:N-1) with (x, y) \
    write VAL_1{(x,y)} read VAL_0{(x,y)}
S1: VAL_1(x,y) = func1(VAL_0(x,y));
#pragma omplc for domain(0:N-1, 0:N-1) with (x, y) \
    write VAL_2{(x,y)} read VAL_1{(x,y),(x+1,y)}
S2: VAL_2(x,y) = func2(VAL_1(x,y), VAL_1(x+1,y));
}
)";

inline const char *Fig1Script = "fusepc S1 S2\n";

inline const char *Chain3D = R"(
#pragma omplc parallel(fuse)
{
#pragma omplc for domain(0:X+1, 0:Y, 0:Z) with (x, y, z) order(z,y,x) \
    write A{(x,y,z)} read B{(x-1,y,z),(x,y,z)}
S1: A(x,y,z) = f(B(x-1,y,z), B(x,y,z));
}
)";

inline const char *Chain1D = R"(
#pragma omplc for domain(0:N) with (x) write OUT{(x)} read IN{(x)}
S: OUT(x) = g(IN(x));
)";

/// A bind-safe unix socket path unique to (pid, call); short enough for
/// sockaddr_un even on deep tmpdirs because it is rooted at /tmp.
inline std::string uniqueSocketPath(const char *Tag) {
  static std::atomic<unsigned> Counter{0};
  return "/tmp/lcdfg-" + std::string(Tag) + "-" +
         std::to_string(static_cast<long>(::getpid())) + "-" +
         std::to_string(Counter.fetch_add(1)) + ".sock";
}

/// Assembles one run-request line. Empty strings / zero values drop the
/// optional fields to their protocol defaults.
struct RequestBuilder {
  std::string Chain = Fig1Chain;
  std::string Script;
  std::int64_t Size = 8;
  std::int64_t Widen = 0;
  std::int64_t Threads = 0;
  std::string Scheduler;
  std::string Kernels;
  int Batched = -1; ///< -1 absent, 0 false, 1 true.
  int Harden = -1;
  int Cache = -1;
  int Checksum = -1;
  std::int64_t MemBudget = -1;
  std::string Id;

  std::string line() const {
    using lcdfg::serve::jsonField;
    std::string L = "{" + jsonField("chain", std::string_view(Chain));
    if (!Id.empty())
      L += "," + jsonField("id", std::string_view(Id));
    if (!Script.empty())
      L += "," + jsonField("script", std::string_view(Script));
    L += "," + jsonField("size", Size);
    if (Widen > 0)
      L += "," + jsonField("widen", Widen);
    if (Threads > 0)
      L += "," + jsonField("threads", Threads);
    if (!Scheduler.empty())
      L += "," + jsonField("scheduler", std::string_view(Scheduler));
    if (!Kernels.empty())
      L += "," + jsonField("kernels", std::string_view(Kernels));
    if (Batched >= 0)
      L += "," + jsonField("batched", Batched != 0);
    if (Harden >= 0)
      L += "," + jsonField("harden", Harden != 0);
    if (Cache >= 0)
      L += "," + jsonField("cache", Cache != 0);
    if (Checksum >= 0)
      L += "," + jsonField("checksum", Checksum != 0);
    if (MemBudget >= 0)
      L += "," + jsonField("mem_budget", MemBudget);
    L += "}";
    return L;
  }
};

} // namespace serve_test

#endif // LCDFG_TESTS_SERVE_SERVETESTUTIL_H
