//===- tests/serve/ServeSoakTest.cpp --------------------------------------===//
//
// The ISSUE's soak/property harness: 5,000 randomized requests from four
// concurrent clients against one daemon instance — valid chains under
// random knobs, parser-fuzz mutations of those chains, malformed frames,
// and mid-request disconnects. Properties checked throughout:
//
//   1. Zero crashes or restarts: one Server lives end to end and still
//      answers a ping after the storm.
//   2. Every byte the server emits is one valid Status-or-response JSON
//      line; garbage in never produces garbage out.
//   3. Warm results are bit-identical to cold: the first result_fnv seen
//      for a (chain, script, size, widen, harden) key is the contract for
//      every later request with that key, across threads, schedulers,
//      batching, and kernel modes.
//   4. The cache ledger balances: hits + misses == admitted.
//
// Everything is seeded, so a failure reproduces from its request index.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "ServeTestUtil.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

using namespace lcdfg;
using namespace lcdfg::serve;
using namespace serve_test;

namespace {

const char *Corpus[] = {Fig1Chain, Chain3D, Chain1D};

/// The parser fuzz suite's mutator, verbatim in spirit: byte- and
/// token-level damage that stays deterministic under a shared seed.
std::string mutate(std::string Text, std::mt19937_64 &Rng) {
  if (Text.empty())
    return Text;
  auto At = [&](std::size_t Bound) { return Rng() % Bound; };
  const char Alphabet[] = "(){}:,+-\\ abcxyzNSW0189_#";
  switch (At(7)) {
  case 0: // Flip one byte.
    Text[At(Text.size())] = Alphabet[At(sizeof(Alphabet) - 1)];
    break;
  case 1: { // Delete a span.
    std::size_t Pos = At(Text.size());
    Text.erase(Pos, std::min<std::size_t>(1 + At(8), Text.size() - Pos));
    break;
  }
  case 2: // Insert noise.
    Text.insert(At(Text.size()),
                std::string(1 + At(4), Alphabet[At(sizeof(Alphabet) - 1)]));
    break;
  case 3: // Truncate.
    Text.resize(At(Text.size()));
    break;
  case 4: { // Duplicate a span.
    std::size_t Pos = At(Text.size());
    std::string Dup = Text.substr(
        Pos, std::min<std::size_t>(1 + At(24), Text.size() - Pos));
    Text.insert(Pos, Dup);
    break;
  }
  case 5: { // Swap two bytes.
    std::size_t A = At(Text.size()), B = At(Text.size());
    std::swap(Text[A], Text[B]);
    break;
  }
  case 6: // Splice two corpus entries.
    Text = Text.substr(0, At(Text.size())) +
           std::string(Corpus[At(std::size(Corpus))]);
    break;
  }
  return Text;
}

/// Identity ledger: first fnv per semantic key wins, later ones must
/// match bit for bit. Knobs that may not change results (threads,
/// scheduler, batched, kernels, cache bypass) are deliberately NOT part
/// of the key — that is the property under test.
class FnvLedger {
public:
  /// Returns false (and fills Prev) on a mismatch.
  bool record(const std::string &Key, const std::string &Fnv,
              std::string *Prev) {
    std::lock_guard<std::mutex> L(Mu);
    auto [It, Inserted] = Map.emplace(Key, Fnv);
    if (!Inserted && It->second != Fnv) {
      *Prev = It->second;
      return false;
    }
    return true;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> L(Mu);
    return Map.size();
  }

private:
  mutable std::mutex Mu;
  std::map<std::string, std::string> Map;
};

struct SoakTally {
  std::atomic<long> Ok{0};
  std::atomic<long> StructuredErrors{0};
  std::atomic<long> GarbageFrames{0};
  std::atomic<long> Disconnects{0};
  std::atomic<long> TransportRetries{0};
  std::atomic<long> Failures{0};
};

constexpr int SoakRequests = 5000;
constexpr int SoakClients = 4;

void soakWorker(unsigned ThreadId, const ServerOptions &Opts,
                std::atomic<int> &Next, FnvLedger &Ledger, SoakTally &T) {
  std::mt19937_64 Rng(0x50a4u * 2654435761u + ThreadId);
  auto Draw = [&](std::size_t Bound) { return Rng() % Bound; };

  auto Conn = Client::connectUnix(Opts.UnixPath);
  ASSERT_TRUE(bool(Conn)) << Conn.error().toString();

  auto Reconnect = [&]() -> bool {
    auto C = Client::connectUnix(Opts.UnixPath);
    if (!C)
      return false;
    *Conn = std::move(*C);
    return true;
  };

  for (int I = Next.fetch_add(1); I < SoakRequests; I = Next.fetch_add(1)) {
    unsigned Category = Draw(100);

    if (Category < 10) {
      // Malformed frame on a throwaway connection: whatever we send, the
      // one line that may come back must be valid JSON carrying ok:false.
      auto C = Client::connectUnix(Opts.UnixPath);
      if (!C)
        continue;
      std::string Frame;
      if (Draw(2) == 0) {
        Frame = RequestBuilder{}.line();
        unsigned Rounds = 1 + Draw(3);
        for (unsigned R = 0; R < Rounds; ++R)
          Frame = mutate(std::move(Frame), Rng);
        // The mutator can splice in raw newlines; keep this a single
        // frame so exactly one response is expected.
        for (char &Ch : Frame)
          if (Ch == '\n')
            Ch = ' ';
      } else {
        Frame.assign(1 + Draw(64), "(){:,\\\"x9#"[Draw(10)]);
      }
      ++T.GarbageFrames;
      if (!C->sendLine(Frame).isOk())
        continue;
      auto Line = C->recvLine(10000);
      if (!Line)
        continue; // Server may legitimately close on hostile input.
      auto V = parseJson(*Line);
      EXPECT_TRUE(bool(V)) << "req " << I << ": unparsable response to "
                           << "garbage frame: " << *Line;
      if (V && !V->find("ok")->asBool(true))
        ++T.StructuredErrors;
      continue;
    }

    if (Category < 20) {
      // Mid-request disconnect: half a frame, then an abrupt close, on a
      // throwaway connection so the shared one stays in sync.
      auto C = Client::connectUnix(Opts.UnixPath);
      if (!C)
        continue;
      std::string Line = RequestBuilder{}.line();
      (void)C->sendRaw(std::string_view(Line).substr(0, 1 + Draw(Line.size())));
      C->closeNow();
      ++T.Disconnects;
      continue;
    }

    // A run request: clean corpus chain (most of the time) or a mutated
    // variant (which may parse — those still join the identity ledger).
    RequestBuilder B;
    std::size_t Pick = Draw(std::size(Corpus));
    B.Chain = Corpus[Pick];
    bool Mutated = Category < 45;
    if (Mutated) {
      unsigned Rounds = 1 + Draw(3);
      for (unsigned R = 0; R < Rounds; ++R)
        B.Chain = mutate(std::move(B.Chain), Rng);
    }
    if (Pick == 0 && Draw(2) == 0)
      B.Script = Fig1Script;
    static const std::int64_t Sizes[] = {4, 6, 8, 12, 16};
    B.Size = Sizes[Draw(std::size(Sizes))];
    B.Widen = Draw(3) == 0 ? 1 : 0;
    B.Threads = static_cast<std::int64_t>(Draw(3)); // 0 = library default.
    B.Scheduler = Draw(2) ? "list" : "wavefront";
    B.Kernels = Draw(2) ? "jit" : "interp";
    B.Batched = static_cast<int>(Draw(2));
    B.Harden = Draw(4) == 0 ? 1 : 0;
    B.Cache = Draw(8) == 0 ? 0 : -1; // Occasional explicit bypass.
    B.Checksum = 1;
    B.Id = "soak-" + std::to_string(I);

    auto R = Conn->request(B.line(), 60000);
    if (!R) {
      // Transport-level failure: reconnect once and retry the request.
      ++T.TransportRetries;
      if (!Reconnect()) {
        ++T.Failures;
        ADD_FAILURE() << "req " << I << ": reconnect failed after "
                      << R.error().toString();
        continue;
      }
      R = Conn->request(B.line(), 60000);
      if (!R) {
        ++T.Failures;
        ADD_FAILURE() << "req " << I
                      << ": failed twice: " << R.error().toString();
        continue;
      }
    }

    const JsonValue *OkField = R->find("ok");
    ASSERT_NE(OkField, nullptr) << "req " << I;
    const JsonValue *IdField = R->find("id");
    ASSERT_NE(IdField, nullptr) << "req " << I;
    EXPECT_EQ(IdField->asString(), B.Id) << "req " << I;
    if (!OkField->asBool()) {
      // Structured per-request failure; the status must carry an E-code.
      const JsonValue *St = R->find("status");
      ASSERT_NE(St, nullptr) << "req " << I;
      EXPECT_EQ(St->find("code")->asString().substr(0, 1), "E")
          << "req " << I;
      ++T.StructuredErrors;
      continue;
    }

    ++T.Ok;
    std::string Fnv = R->find("result_fnv")->asString();
    EXPECT_EQ(Fnv.size(), 16u) << "req " << I;
    std::string Key = B.Chain + "\x01" + B.Script + "\x01" +
                      std::to_string(B.Size) + "\x01" +
                      std::to_string(B.Widen) + "\x01" +
                      std::to_string(B.Harden);
    std::string Prev;
    if (!Ledger.record(Key, Fnv, &Prev)) {
      ++T.Failures;
      ADD_FAILURE() << "req " << I << ": warm result " << Fnv
                    << " diverged from cold result " << Prev
                    << " (size=" << B.Size << " widen=" << B.Widen
                    << " threads=" << B.Threads << " sched=" << B.Scheduler
                    << " kernels=" << B.Kernels << " batched=" << B.Batched
                    << ")";
    }
  }
}

TEST(ServeSoak, FiveThousandRandomizedRequestsKeepEveryInvariant) {
  ServerOptions Opts;
  Opts.UnixPath = uniqueSocketPath("soak");
  Opts.CacheCapacity = 48; // Small enough that the soak exercises LRU.
  Server Srv(Opts);
  ASSERT_TRUE(Srv.start().isOk());

  std::atomic<int> Next{0};
  FnvLedger Ledger;
  SoakTally T;
  std::vector<std::thread> Ts;
  for (unsigned C = 0; C < SoakClients; ++C)
    Ts.emplace_back(soakWorker, C, std::cref(Opts), std::ref(Next),
                    std::ref(Ledger), std::ref(T));
  for (std::thread &Th : Ts)
    Th.join();

  // Property 1: the daemon survived — same instance, still answering.
  auto C = Client::connectUnix(Opts.UnixPath);
  ASSERT_TRUE(bool(C));
  auto Ping = C->request("{\"cmd\":\"ping\"}");
  ASSERT_TRUE(bool(Ping)) << Ping.error().toString();
  EXPECT_TRUE(Ping->find("ok")->asBool());

  // Property 4: the cache ledger balances exactly.
  ServerStats S = Srv.stats();
  EXPECT_EQ(S.Hits + S.Misses, S.Admitted);
  EXPECT_LE(S.Entries, static_cast<std::uint64_t>(Opts.CacheCapacity));

  // The storm must have exercised every lane, or the soak proves little.
  EXPECT_EQ(T.Failures.load(), 0);
  EXPECT_GT(T.Ok.load(), 1000);
  EXPECT_GT(T.StructuredErrors.load(), 50);
  EXPECT_GT(T.GarbageFrames.load(), 100);
  EXPECT_GT(T.Disconnects.load(), 100);
  EXPECT_GT(S.Hits, 0u);
  EXPECT_GT(S.Misses, 0u);
  EXPECT_GT(Ledger.size(), 10u);

  Srv.stop();
  ::testing::Test::RecordProperty("soak_ok", static_cast<int>(T.Ok.load()));
  ::testing::Test::RecordProperty("soak_errors",
                                  static_cast<int>(T.StructuredErrors.load()));
}

} // namespace
