//===- tests/godunov/GodunovTest.cpp --------------------------------------===//

#include "godunov/Godunov.h"

#include "godunov/GodunovGraph.h"
#include "graph/CostModel.h"
#include "graph/DotExport.h"
#include "graph/GraphBuilder.h"
#include "storage/LivenessAllocator.h"
#include "storage/ReuseDistance.h"

#include <gtest/gtest.h>

#include <chrono>

using namespace lcdfg;
using namespace lcdfg::graph;

TEST(Godunov, SchedulesAgree) {
  for (int N : {4, 8, 11})
    EXPECT_LE(gdnv::verifySchedules(N), 1e-12) << "N=" << N;
}

TEST(Godunov, FusedSavesTemporaryStorage) {
  for (int N : {8, 16}) {
    long Orig = gdnv::temporaryElementsOriginal(N);
    long Fused = gdnv::temporaryElementsFused(N);
    EXPECT_LT(Fused, Orig);
    // The Figure 14 fusion removes the WTemp and corrected-state arrays:
    // more than a third of the footprint.
    EXPECT_LT(static_cast<double>(Fused), 0.95 * Orig);
  }
}

TEST(Godunov, ParallelRunsMatchSerial) {
  const int N = 6, Boxes = 4;
  std::vector<rt::Box> In;
  for (int I = 0; I < Boxes; ++I) {
    In.emplace_back(N, gdnv::GhostDepth, gdnv::NumComps);
    In.back().fillPseudoRandom(100 + I);
  }
  auto A = gdnv::makeOutputs(Boxes, N);
  auto B = gdnv::makeOutputs(Boxes, N);
  gdnv::runOriginal(In, A, 1);
  gdnv::runFused(In, B, 4);
  for (int I = 0; I < Boxes; ++I)
    for (int D = 0; D < 3; ++D)
      EXPECT_LE(rt::maxRelDiff(A[I][D], B[I][D]), 1e-12);
}

TEST(GodunovGraph, ChainShapeMatchesFigure13) {
  ir::LoopChain Chain = gdnv::buildComputeWHalfChain();
  // 6 PPM + 3 riem + 12 qlu + 6 riem + 6 qlu + 3 riem = 36 nests.
  EXPECT_EQ(Chain.numNests(), 36u);
  EXPECT_EQ(Chain.array("W").Kind, ir::StorageKind::PersistentInput);
  EXPECT_EQ(Chain.array("WHalf_1").Kind, ir::StorageKind::PersistentOutput);
  EXPECT_EQ(Chain.array("WTempMinus_12").Kind, ir::StorageKind::Temporary);
}

TEST(GodunovGraph, FusionInternalizesTempStates) {
  ir::LoopChain Chain = gdnv::buildComputeWHalfChain();
  Graph G = buildGraph(Chain);
  unsigned LiveBefore = 0;
  for (NodeId S = 0; S < G.numStmtNodes(); ++S)
    LiveBefore += G.stmt(S).Dead ? 0 : 1;
  EXPECT_EQ(LiveBefore, 36u);

  gdnv::applyGodunovFusion(G);
  G.verify();
  unsigned LiveAfter = 0;
  for (NodeId S = 0; S < G.numStmtNodes(); ++S)
    LiveAfter += G.stmt(S).Dead ? 0 : 1;
  // 6 PPM + 3 riem1 + 6 fused transverse + 3 fused final = 18 nodes
  // (Figure 14's coarser graph).
  EXPECT_EQ(LiveAfter, 18u);

  for (const char *V : {"WTempMinus_12", "WTempPlus_31", "WFinalMinus_2"})
    EXPECT_TRUE(G.value(G.findValue(V)).Internalized) << V;
}

TEST(GodunovGraph, ReuseDistanceCollapsesTempsToScalars) {
  ir::LoopChain Chain = gdnv::buildComputeWHalfChain();
  Graph G = buildGraph(Chain);
  gdnv::applyGodunovFusion(G);
  auto Reduced = storage::reduceStorage(G);
  EXPECT_EQ(Reduced.at("WTempMinus_12").toString(), "1");
  EXPECT_EQ(Reduced.at("WTempPlus_23").toString(), "1");
  EXPECT_EQ(Reduced.at("WFinalPlus_3").toString(), "1");
}

TEST(GodunovGraph, CostAndAllocationImprove) {
  ir::LoopChain C1 = gdnv::buildComputeWHalfChain();
  Graph Before = buildGraph(C1);
  ir::LoopChain C2 = gdnv::buildComputeWHalfChain();
  Graph After = buildGraph(C2);
  gdnv::applyGodunovFusion(After);
  storage::reduceStorage(After);

  Polynomial SBefore = computeCost(Before).TotalRead;
  Polynomial SAfter = computeCost(After).TotalRead;
  EXPECT_TRUE(SAfter.asymptoticallyLess(SBefore));

  storage::Allocation ABefore = storage::allocateSpaces(Before);
  storage::Allocation AAfter = storage::allocateSpaces(After);
  EXPECT_TRUE(AAfter.Total.asymptoticallyLess(ABefore.Total));
}

TEST(GodunovGraph, MeasuredImprovementMatchesPaperDirection) {
  // The paper reports a 17% execution-time reduction; on this container
  // we only assert the fused schedule is not slower.
  const int N = 12, Boxes = 2;
  std::vector<rt::Box> In;
  for (int I = 0; I < Boxes; ++I) {
    In.emplace_back(N, gdnv::GhostDepth, gdnv::NumComps);
    In.back().fillPseudoRandom(7 + I);
  }
  auto Out = gdnv::makeOutputs(Boxes, N);
  auto Time = [&](bool Fused) {
    if (Fused)
      gdnv::runFused(In, Out, 1);
    else
      gdnv::runOriginal(In, Out, 1);
    double Best = 1e30;
    for (int Rep = 0; Rep < 3; ++Rep) {
      auto T0 = std::chrono::steady_clock::now();
      if (Fused)
        gdnv::runFused(In, Out, 1);
      else
        gdnv::runOriginal(In, Out, 1);
      auto T1 = std::chrono::steady_clock::now();
      Best = std::min(Best, std::chrono::duration<double>(T1 - T0).count());
    }
    return Best;
  };
  EXPECT_LT(Time(true), Time(false) * 1.15);
}

TEST(GodunovGraph, DotExportRendersBothFigures) {
  ir::LoopChain Chain = gdnv::buildComputeWHalfChain();
  Graph G = buildGraph(Chain);
  std::string Fig13 = toDot(G, {true, "Figure 13"});
  EXPECT_NE(Fig13.find("qluM_12"), std::string::npos);
  gdnv::applyGodunovFusion(G);
  std::string Fig14 = toDot(G, {true, "Figure 14"});
  EXPECT_NE(Fig14.find("qluM_12+qluP_12+riem2_12"), std::string::npos);
}
