//===- tests/godunov/GodunovInterpreterTest.cpp ---------------------------===//
//
// Closes the loop on the Section 5.6 case study: the ComputeWHalf loop
// chain, executed through the graph/codegen/interpreter pipeline (in both
// the Figure 13 and fused Figure 14 schedules), must agree with the
// hand-written kernels of Godunov.cpp.
//
//===----------------------------------------------------------------------===//

#include "codegen/Generator.h"
#include "godunov/Godunov.h"
#include "godunov/GodunovGraph.h"
#include "graph/GraphBuilder.h"
#include "storage/ReuseDistance.h"
#include "storage/StorageMap.h"

#include <gtest/gtest.h>

using namespace lcdfg;
using namespace lcdfg::graph;

namespace {

using Env = std::map<std::string, std::int64_t, std::less<>>;

/// Interprets the chain (per one component) and compares WHalf_1..3
/// against the hand kernels applied to a box whose components all carry
/// the same field.
void checkSchedule(bool Fused, int N) {
  // Hand-kernel reference.
  rt::Box W(N, gdnv::GhostDepth, gdnv::NumComps);
  W.fillPseudoRandom(0xfeed);
  // Make every component identical so the single-component chain is
  // comparable against any of them.
  for (int C = 1; C < gdnv::NumComps; ++C)
    for (int Z = -gdnv::GhostDepth; Z < N + gdnv::GhostDepth; ++Z)
      for (int Y = -gdnv::GhostDepth; Y < N + gdnv::GhostDepth; ++Y)
        for (int X = -gdnv::GhostDepth; X < N + gdnv::GhostDepth; ++X)
          W.at(C, Z, Y, X) = W.at(0, Z, Y, X);
  auto Out = gdnv::makeOutputs(1, N);
  gdnv::computeWHalfOriginal(W, Out[0]);

  // Interpreted chain.
  ir::LoopChain Chain = gdnv::buildComputeWHalfChain();
  codegen::KernelRegistry Kernels;
  gdnv::registerKernels(Chain, Kernels);
  Graph G = buildGraph(Chain);
  if (Fused) {
    gdnv::applyGodunovFusion(G);
    storage::reduceStorage(G);
  }
  Env E{{"N", N}};
  storage::StoragePlan Plan = storage::StoragePlan::build(G);
  storage::ConcreteStorage Store(Plan, E);
  G.chain().array("W").Extent->forEachPoint(
      E, [&](const std::vector<std::int64_t> &P) {
        Store.at("W", P) =
            W.at(0, static_cast<int>(P[0]), static_cast<int>(P[1]),
                 static_cast<int>(P[2]));
      });
  codegen::AstPtr Ast = codegen::generate(G);
  codegen::execute(G, *Ast, Kernels, Store, E);

  for (int D = 1; D <= 3; ++D)
    for (int Z = 0; Z < N; ++Z)
      for (int Y = 0; Y < N; ++Y)
        for (int X = 0; X < N; ++X)
          ASSERT_NEAR(
              Store.at("WHalf_" + std::to_string(D), {Z, Y, X}),
              Out[0][D - 1].at(0, Z, Y, X), 1e-13)
              << "dim " << D << " at " << Z << "," << Y << "," << X;
}

} // namespace

TEST(GodunovInterpreter, Figure13ScheduleMatchesHandKernels) {
  checkSchedule(/*Fused=*/false, 4);
}

TEST(GodunovInterpreter, Figure14ScheduleMatchesHandKernels) {
  checkSchedule(/*Fused=*/true, 4);
}

TEST(GodunovInterpreter, LargerBoxStillExact) {
  checkSchedule(/*Fused=*/true, 7);
}
