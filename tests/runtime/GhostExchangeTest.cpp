//===- tests/runtime/GhostExchangeTest.cpp --------------------------------===//

#include "runtime/GhostExchange.h"

#include "minifluxdiv/Variants.h"

#include <gtest/gtest.h>

using namespace lcdfg;
using rt::Box;
using rt::GridLayout;

namespace {

/// A globally addressable field value so exchanged ghosts are checkable.
double fieldValue(int C, int GZ, int GY, int GX) {
  return C * 1000000.0 + GZ * 10000.0 + GY * 100.0 + GX;
}

/// Fills box interiors from the global field.
std::vector<Box> makeGrid(const GridLayout &L, int N, int Ghost, int Comps) {
  std::vector<Box> Boxes;
  for (int BZ = 0; BZ < L.Bz; ++BZ)
    for (int BY = 0; BY < L.By; ++BY)
      for (int BX = 0; BX < L.Bx; ++BX) {
        Boxes.emplace_back(N, Ghost, Comps);
        Box &B = Boxes.back();
        for (int C = 0; C < Comps; ++C)
          for (int Z = 0; Z < N; ++Z)
            for (int Y = 0; Y < N; ++Y)
              for (int X = 0; X < N; ++X)
                B.at(C, Z, Y, X) =
                    fieldValue(C, BZ * N + Z, BY * N + Y, BX * N + X);
      }
  return Boxes;
}

} // namespace

TEST(GhostExchange, WrapHelper) {
  EXPECT_EQ(GridLayout::wrap(-1, 4), 3);
  EXPECT_EQ(GridLayout::wrap(4, 4), 0);
  EXPECT_EQ(GridLayout::wrap(2, 4), 2);
  EXPECT_EQ(GridLayout::wrap(-5, 4), 3);
}

TEST(GhostExchange, FillsGhostsFromNeighbors) {
  GridLayout L{2, 2, 2};
  const int N = 4, G = 2;
  std::vector<Box> Boxes = makeGrid(L, N, G, 2);
  ASSERT_TRUE(rt::exchangeGhosts(Boxes, L).isOk());

  // Every ghost cell of every box holds the periodic global field value.
  int GlobalN = 2 * N;
  for (int BZ = 0; BZ < 2; ++BZ)
    for (int BY = 0; BY < 2; ++BY)
      for (int BX = 0; BX < 2; ++BX) {
        const Box &B = Boxes[L.index(BZ, BY, BX)];
        for (int C = 0; C < 2; ++C)
          for (int Z = -G; Z < N + G; ++Z)
            for (int Y = -G; Y < N + G; ++Y)
              for (int X = -G; X < N + G; ++X) {
                int GZ = GridLayout::wrap(BZ * N + Z, GlobalN);
                int GY = GridLayout::wrap(BY * N + Y, GlobalN);
                int GX = GridLayout::wrap(BX * N + X, GlobalN);
                ASSERT_EQ(B.at(C, Z, Y, X), fieldValue(C, GZ, GY, GX))
                    << "box(" << BZ << BY << BX << ") cell " << Z << ","
                    << Y << "," << X;
              }
      }
}

TEST(GhostExchange, SingleBoxIsSelfPeriodic) {
  GridLayout L{1, 1, 1};
  const int N = 4, G = 2;
  std::vector<Box> Boxes = makeGrid(L, N, G, 1);
  ASSERT_TRUE(rt::exchangeGhosts(Boxes, L).isOk());
  // Ghost at -1 wraps to interior N-1.
  EXPECT_EQ(Boxes[0].at(0, 0, 0, -1), Boxes[0].at(0, 0, 0, N - 1));
  EXPECT_EQ(Boxes[0].at(0, N, 0, 0), Boxes[0].at(0, 0, 0, 0));
  EXPECT_EQ(Boxes[0].at(0, -2, -2, -2), Boxes[0].at(0, N - 2, N - 2, N - 2));
}

TEST(GhostExchange, ParallelMatchesSerial) {
  GridLayout L{2, 2, 1};
  std::vector<Box> A = makeGrid(L, 4, 2, 3);
  std::vector<Box> B = A;
  ASSERT_TRUE(rt::exchangeGhosts(A, L, 1).isOk());
  ASSERT_TRUE(rt::exchangeGhosts(B, L, 4).isOk());
  for (std::size_t I = 0; I < A.size(); ++I)
    for (int C = 0; C < 3; ++C)
      for (int Z = -2; Z < 6; ++Z)
        for (int Y = -2; Y < 6; ++Y)
          for (int X = -2; X < 6; ++X)
            ASSERT_EQ(A[I].at(C, Z, Y, X), B[I].at(C, Z, Y, X));
}

TEST(GhostExchange, ThreadSweepIsBitIdentical) {
  // T in {1,2,4} must produce bit-identical grids: each ghost cell has a
  // single writer, so thread count cannot change any result bit.
  GridLayout L{2, 2, 2};
  const int N = 4, G = 2, Comps = 2;
  std::vector<Box> Ref = makeGrid(L, N, G, Comps);
  ASSERT_TRUE(rt::exchangeGhosts(Ref, L, 1).isOk());
  for (int T : {2, 4}) {
    std::vector<Box> Grid = makeGrid(L, N, G, Comps);
    ASSERT_TRUE(rt::exchangeGhosts(Grid, L, T).isOk());
    for (std::size_t I = 0; I < Ref.size(); ++I)
      for (int C = 0; C < Comps; ++C)
        for (int Z = -G; Z < N + G; ++Z)
          for (int Y = -G; Y < N + G; ++Y)
            for (int X = -G; X < N + G; ++X)
              ASSERT_EQ(Ref[I].at(C, Z, Y, X), Grid[I].at(C, Z, Y, X))
                  << "T=" << T << " box " << I;
  }
}

TEST(GhostExchange, SingleBoxFullDepthSelfExchange) {
  // 1x1x1 periodic self-exchange at the deepest legal ghost depth (G == N):
  // every ghost coordinate wraps back into this box's own interior.
  GridLayout L{1, 1, 1};
  const int N = 3, G = 3;
  std::vector<Box> Boxes = makeGrid(L, N, G, 1);
  ASSERT_TRUE(rt::exchangeGhosts(Boxes, L).isOk());
  const Box &B = Boxes[0];
  for (int Z = -G; Z < N + G; ++Z)
    for (int Y = -G; Y < N + G; ++Y)
      for (int X = -G; X < N + G; ++X)
        ASSERT_EQ(B.at(0, Z, Y, X),
                  fieldValue(0, GridLayout::wrap(Z, N), GridLayout::wrap(Y, N),
                             GridLayout::wrap(X, N)))
            << Z << "," << Y << "," << X;
}

TEST(GhostExchange, RejectsGhostDeeperThanInterior) {
  GridLayout L{1, 1, 1};
  std::vector<Box> Boxes;
  Boxes.emplace_back(/*Size=*/2, /*Ghost=*/3, /*Comps=*/1);
  support::Status S = rt::exchangeGhosts(Boxes, L);
  ASSERT_FALSE(S.isOk());
  EXPECT_EQ(S.code(), support::ErrorCode::InvalidChain);
  EXPECT_EQ(S.subcode(), "ghost-grid");
}

TEST(GhostExchange, RejectsBoxCountMismatch) {
  GridLayout L{2, 1, 1};
  std::vector<Box> Boxes;
  Boxes.emplace_back(4, 1, 1);
  support::Status S = rt::exchangeGhosts(Boxes, L);
  ASSERT_FALSE(S.isOk());
  EXPECT_EQ(S.code(), support::ErrorCode::InvalidChain);
}

TEST(GhostExchange, RejectsHeterogeneousBoxes) {
  GridLayout L{2, 1, 1};
  std::vector<Box> Boxes;
  Boxes.emplace_back(4, 1, 1);
  Boxes.emplace_back(4, 2, 1); // ghost depth differs from box 0
  support::Status S = rt::exchangeGhosts(Boxes, L);
  ASSERT_FALSE(S.isOk());
  EXPECT_EQ(S.code(), support::ErrorCode::InvalidChain);
  EXPECT_NE(S.message().find("box 1"), std::string::npos);
}

TEST(GhostExchange, TimeSteppingVariantsStayConsistent) {
  // Multi-step driver: exchange + flux step per iteration; two different
  // schedules must track each other across steps.
  GridLayout L{1, 2, 2};
  const int N = 8;
  mfd::Problem P;
  P.BoxSize = N;
  P.NumBoxes = L.numBoxes();

  std::vector<Box> StateA = makeGrid(L, N, mfd::GhostDepth, mfd::NumComps);
  std::vector<Box> StateB = StateA;
  std::vector<Box> Next = mfd::makeOutputs(P);
  mfd::RunConfig Cfg;

  for (int Step = 0; Step < 3; ++Step) {
    ASSERT_TRUE(rt::exchangeGhosts(StateA, L).isOk());
    mfd::runVariant(mfd::Variant::SeriesReduced, StateA, Next, Cfg);
    for (int I = 0; I < P.NumBoxes; ++I)
      StateA[I].copyInteriorFrom(Next[I]);

    ASSERT_TRUE(rt::exchangeGhosts(StateB, L).isOk());
    mfd::runVariant(mfd::Variant::FuseAllReduced, StateB, Next, Cfg);
    for (int I = 0; I < P.NumBoxes; ++I)
      StateB[I].copyInteriorFrom(Next[I]);
  }
  for (int I = 0; I < P.NumBoxes; ++I)
    EXPECT_LE(rt::maxRelDiff(StateA[I], StateB[I]), 1e-11) << "box " << I;
}
