//===- tests/runtime/BoxGridTest.cpp --------------------------------------===//

#include "runtime/BoxGrid.h"

#include "runtime/Parallel.h"

#include <gtest/gtest.h>

#include <atomic>

using namespace lcdfg;
using rt::Box;

TEST(Box, ShapeAndStrides) {
  Box B(8, 2, 5);
  EXPECT_EQ(B.size(), 8);
  EXPECT_EQ(B.ghost(), 2);
  EXPECT_EQ(B.numComponents(), 5);
  EXPECT_EQ(B.padded(), 12);
  EXPECT_EQ(B.strideX(), 1);
  EXPECT_EQ(B.strideY(), 12);
  EXPECT_EQ(B.strideZ(), 144);
}

TEST(Box, GhostAccess) {
  Box B(4, 2, 2);
  B.at(0, -2, -2, -2) = 1.0;
  B.at(1, 5, 5, 5) = 2.0;
  B.at(0, 0, 0, 0) = 3.0;
  EXPECT_EQ(B.at(0, -2, -2, -2), 1.0);
  EXPECT_EQ(B.at(1, 5, 5, 5), 2.0);
  EXPECT_EQ(B.at(0, 0, 0, 0), 3.0);
  // Distinct components do not alias.
  EXPECT_EQ(B.at(1, 0, 0, 0), 0.0);
}

TEST(Box, OriginPointerMatchesAt) {
  Box B(4, 2, 3);
  B.at(2, 1, 2, 3) = 7.5;
  const double *P = B.origin(2);
  EXPECT_EQ(P[1 * B.strideZ() + 2 * B.strideY() + 3], 7.5);
  B.at(2, -1, 0, -2) = 8.5;
  EXPECT_EQ(P[-1 * B.strideZ() + 0 * B.strideY() - 2], 8.5);
}

TEST(Box, PseudoRandomFillIsDeterministicAndConditioned) {
  Box A(4, 2, 2), B(4, 2, 2);
  A.fillPseudoRandom(42);
  B.fillPseudoRandom(42);
  EXPECT_EQ(rt::maxRelDiff(A, B), 0.0);
  Box C(4, 2, 2);
  C.fillPseudoRandom(43);
  EXPECT_GT(rt::maxRelDiff(A, C), 0.0);
  // Values live in [0.5, 1.5): no cancellation-hostile zeros.
  for (int Z = -2; Z < 6; ++Z)
    for (int Y = -2; Y < 6; ++Y)
      for (int X = -2; X < 6; ++X) {
        EXPECT_GE(A.at(0, Z, Y, X), 0.5);
        EXPECT_LT(A.at(0, Z, Y, X), 1.5);
      }
}

TEST(Box, CopyInteriorLeavesGhostsAlone) {
  Box Src(4, 2, 1), Dst(4, 2, 1);
  Src.fillPseudoRandom(7);
  Dst.fillPseudoRandom(9);
  double Ghost = Dst.at(0, -1, 0, 0);
  Dst.copyInteriorFrom(Src);
  EXPECT_EQ(Dst.at(0, 0, 0, 0), Src.at(0, 0, 0, 0));
  EXPECT_EQ(Dst.at(0, 3, 3, 3), Src.at(0, 3, 3, 3));
  EXPECT_EQ(Dst.at(0, -1, 0, 0), Ghost);
}

TEST(Box, MaxRelDiffDetectsSingleElement) {
  Box A(4, 2, 1), B(4, 2, 1);
  A.fillPseudoRandom(1);
  B.copyInteriorFrom(A);
  // Interiors match even though ghosts differ.
  EXPECT_EQ(rt::maxRelDiff(A, B), 0.0);
  B.at(0, 2, 2, 2) *= 1.0 + 1e-6;
  EXPECT_NEAR(rt::maxRelDiff(A, B), 1e-6, 1e-8);
}

TEST(Parallel, CoversAllIndices) {
  std::vector<std::atomic<int>> Hits(64);
  rt::parallelFor(64, 4, [&](int I) { ++Hits[I]; });
  for (int I = 0; I < 64; ++I)
    EXPECT_EQ(Hits[I].load(), 1);
  rt::parallelFor(64, 1, [&](int I) { ++Hits[I]; });
  for (int I = 0; I < 64; ++I)
    EXPECT_EQ(Hits[I].load(), 2);
}

TEST(Parallel, HardwareThreadsPositive) {
  EXPECT_GE(rt::hardwareThreads(), 1);
}
