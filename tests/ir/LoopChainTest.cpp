//===- tests/ir/LoopChainTest.cpp -----------------------------------------===//

#include "ir/LoopChain.h"

#include "minifluxdiv/Spec.h"

#include <gtest/gtest.h>

using namespace lcdfg;
using poly::AffineExpr;
using poly::BoxSet;
using poly::Dim;

namespace {

/// The three-nest running example of Figure 1.
ir::LoopChain figure1Chain() {
  ir::LoopChain Chain("fig1", "fuse");
  AffineExpr N = AffineExpr::var("N");
  BoxSet Faces({Dim{"y", AffineExpr(0), N - AffineExpr(1)},
                Dim{"x", AffineExpr(0), N}});
  BoxSet Cells({Dim{"y", AffineExpr(0), N - AffineExpr(1)},
                Dim{"x", AffineExpr(0), N - AffineExpr(1)}});

  ir::LoopNest S1;
  S1.Name = "S1";
  S1.Domain = Faces;
  S1.Write = ir::Access{"VAL_1", {{0, 0}}};
  S1.Reads = {ir::Access{"VAL_0", {{0, 0}}}};
  Chain.addNest(S1);

  ir::LoopNest S2;
  S2.Name = "S2";
  S2.Domain = Faces;
  S2.Write = ir::Access{"VAL_2", {{0, 0}}};
  S2.Reads = {ir::Access{"VAL_1", {{0, 0}}}};
  Chain.addNest(S2);

  ir::LoopNest S3;
  S3.Name = "S3";
  S3.Domain = Cells;
  S3.Write = ir::Access{"VAL_3", {{0, 0}}};
  S3.Reads = {ir::Access{"VAL_2", {{0, 0}, {0, 1}}}};
  Chain.addNest(S3);

  Chain.finalize();
  return Chain;
}

} // namespace

TEST(LoopChain, AccessOffsets) {
  ir::Access A{"V", {{0, -2}, {0, 1}, {1, 0}}};
  EXPECT_EQ(A.minOffsets(), (std::vector<std::int64_t>{0, -2}));
  EXPECT_EQ(A.maxOffsets(), (std::vector<std::int64_t>{1, 1}));
  EXPECT_EQ(A.toString(), "V{(0,-2),(0,1),(1,0)}");
}

TEST(LoopChain, StorageClassification) {
  ir::LoopChain Chain = figure1Chain();
  EXPECT_EQ(Chain.array("VAL_0").Kind, ir::StorageKind::PersistentInput);
  EXPECT_EQ(Chain.array("VAL_1").Kind, ir::StorageKind::Temporary);
  EXPECT_EQ(Chain.array("VAL_2").Kind, ir::StorageKind::Temporary);
  EXPECT_EQ(Chain.array("VAL_3").Kind, ir::StorageKind::PersistentOutput);
}

TEST(LoopChain, ExplicitDeclarationWins) {
  ir::LoopChain Chain("decl");
  AffineExpr N = AffineExpr::var("N");
  BoxSet Cells({Dim{"x", AffineExpr(0), N - AffineExpr(1)}});
  // VAL_1 would be classified temporary; declare it persistent.
  Chain.declareArray(
      ir::ArrayInfo{"VAL_1", ir::StorageKind::PersistentOutput, {}});
  ir::LoopNest A;
  A.Name = "A";
  A.Domain = Cells;
  A.Write = ir::Access{"VAL_1", {{0}}};
  A.Reads = {ir::Access{"VAL_0", {{0}}}};
  Chain.addNest(A);
  ir::LoopNest B;
  B.Name = "B";
  B.Domain = Cells;
  B.Write = ir::Access{"VAL_2", {{0}}};
  B.Reads = {ir::Access{"VAL_1", {{0}}}};
  Chain.addNest(B);
  Chain.finalize();
  EXPECT_EQ(Chain.array("VAL_1").Kind, ir::StorageKind::PersistentOutput);
}

TEST(LoopChain, FootprintsAndExtents) {
  ir::LoopChain Chain = figure1Chain();
  // VAL_2 is written over the faces and read over [0, N+1] in x.
  EXPECT_EQ(Chain.valueSize("VAL_2").toString(), "N^2+N");
  // The stencil read of S3 widens the inferred extent only if it exceeds
  // the write footprint; here read hull is x in [0, N], same as the write.
  const ir::LoopNest &S3 = Chain.nest(2);
  poly::BoxSet FP = S3.readFootprint(0);
  EXPECT_EQ(FP.dim(1).Lower.toString(), "0");
  EXPECT_EQ(FP.dim(1).Upper.toString(), "N");
  EXPECT_EQ(Chain.valueSize("VAL_3").toString(), "N^2");
}

TEST(LoopChain, WriterAndReaders) {
  ir::LoopChain Chain = figure1Chain();
  EXPECT_EQ(Chain.writerOf("VAL_1"), 0u);
  EXPECT_EQ(Chain.writerOf("VAL_2"), 1u);
  EXPECT_FALSE(Chain.writerOf("VAL_0").has_value());
  EXPECT_EQ(Chain.readersOf("VAL_2"), (std::vector<unsigned>{2}));
  EXPECT_TRUE(Chain.readersOf("VAL_3").empty());
}

TEST(LoopChain, MiniFluxDiv2DShape) {
  ir::LoopChain Chain = mfd::buildChain2D();
  // 2 directions x 3 stages x 4 components = 24 nests (Section 5.2).
  EXPECT_EQ(Chain.numNests(), 24u);
  EXPECT_EQ(Chain.array("in_rho").Kind, ir::StorageKind::PersistentInput);
  EXPECT_EQ(Chain.array("out_e").Kind, ir::StorageKind::PersistentOutput);
  EXPECT_EQ(Chain.array("F1x_u").Kind, ir::StorageKind::Temporary);
  EXPECT_EQ(Chain.valueSize("F1x_u").toString(), "N^2+N");
  EXPECT_EQ(Chain.valueSize("out_rho").toString(), "N^2");
}

TEST(LoopChain, MiniFluxDiv3DShape) {
  ir::LoopChain Chain = mfd::buildChain3D();
  // 3 directions x 3 stages x 5 components = 45 nests.
  EXPECT_EQ(Chain.numNests(), 45u);
  EXPECT_EQ(Chain.valueSize("F1x_u").toString(), "N^3+N^2");
  EXPECT_EQ(Chain.valueSize("out_rho").toString(), "N^3");
}

TEST(LoopChainValidate, RejectsHostileNestsWithStructuredErrors) {
  // Hostile (e.g. fuzz-mutated) nests must be refused with E002 values in
  // every build type, not by a Debug-only assert.
  AffineExpr N = AffineExpr::var("N");
  BoxSet Cells({Dim{"x", AffineExpr(0), N - AffineExpr(1)}});

  auto Reject = [](ir::LoopNest Nest, const char *Needle) {
    ir::LoopChain Chain("hostile", "fuse");
    auto R = Chain.tryAddNest(std::move(Nest));
    ASSERT_FALSE(static_cast<bool>(R)) << Needle;
    EXPECT_EQ(R.error().code(), support::ErrorCode::InvalidChain);
    EXPECT_NE(R.error().message().find(Needle), std::string::npos)
        << R.error().toString();
    EXPECT_EQ(Chain.numNests(), 0u) << "rejected nests must not be added";
  };

  ir::LoopNest Empty;
  Empty.Name = "S";
  Empty.Domain = Cells;
  Empty.Write = ir::Access{"A", {}};
  Reject(Empty, "empty");

  ir::LoopNest Multi;
  Multi.Name = "S";
  Multi.Domain = Cells;
  Multi.Write = ir::Access{"A", {{0}, {1}}};
  Reject(Multi, "exactly one point");

  ir::LoopNest BadRank;
  BadRank.Name = "S";
  BadRank.Domain = Cells;
  BadRank.Write = ir::Access{"A", {{0, 0}}}; // 2-d offset, 1-d domain
  Reject(BadRank, "rank");

  ir::LoopNest BadRead;
  BadRead.Name = "S";
  BadRead.Domain = Cells;
  BadRead.Write = ir::Access{"A", {{0}}};
  BadRead.Reads = {ir::Access{"B", {{0, 1}}}};
  Reject(BadRead, "rank");
}

TEST(LoopChainValidate, AcceptsWellFormedNestsAndWholeChain) {
  ir::LoopChain Chain = figure1Chain();
  support::Status S = Chain.validate();
  EXPECT_TRUE(S.isOk()) << S.toString();

  AffineExpr N = AffineExpr::var("N");
  BoxSet Cells({Dim{"y", AffineExpr(0), N - AffineExpr(1)},
                Dim{"x", AffineExpr(0), N - AffineExpr(1)}});
  ir::LoopNest Good;
  Good.Name = "S4";
  Good.Domain = Cells;
  Good.Write = ir::Access{"VAL_4", {{0, 0}}};
  Good.Reads = {ir::Access{"VAL_3", {{0, 0}}}};
  auto Idx = Chain.tryAddNest(std::move(Good));
  ASSERT_TRUE(static_cast<bool>(Idx)) << Idx.error().toString();
  EXPECT_EQ(*Idx, 3u);
}

TEST(LoopChainValidate, UnknownArrayLookupRaisesE003) {
  ir::LoopChain Chain = figure1Chain();
  Chain.finalize();
  try {
    (void)Chain.array("NOPE");
    FAIL() << "expected StatusError";
  } catch (const support::StatusError &E) {
    EXPECT_EQ(E.status().code(), support::ErrorCode::UnknownArray);
    EXPECT_NE(E.status().message().find("NOPE"), std::string::npos);
  }
}
