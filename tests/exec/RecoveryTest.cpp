//===- tests/exec/RecoveryTest.cpp ----------------------------------------===//
//
// The fail-operational fault matrix. Every injected fault class must
// either recover through a degradation-ladder rung whose outputs are
// bit-identical to the scalar-serial oracle, or terminate with a
// structured diagnostic carrying a stable reason code — never an abort, a
// hang, or a silently wrong answer. Hardened mode must pass clean plans
// untouched and catch a seeded read-before-write through the NaN guard.
//
//===----------------------------------------------------------------------===//

#include "exec/Recovery.h"

#include "codegen/Generator.h"
#include "exec/FaultInjector.h"
#include "exec/ThreadPool.h"
#include "graph/GraphBuilder.h"
#include "minifluxdiv/Spec.h"
#include "parser/PragmaParser.h"
#include "parser/ScriptRunner.h"
#include "storage/ReuseDistance.h"
#include "tiling/Tiling.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

using namespace lcdfg;
using namespace lcdfg::exec;

namespace {

/// Arms the process-wide injector for one test and guarantees it is
/// disarmed afterwards even when the fault was never consumed.
struct ScopedGlobalFault {
  explicit ScopedGlobalFault(FaultSpec Spec) {
    FaultInjector::global().arm(Spec);
  }
  ~ScopedGlobalFault() { FaultInjector::global().disarm(); }
};

/// MiniFluxDiv harness, mirroring the ExecutionPlan suite: full storage,
/// deterministic seeded inputs, persistent outputs collected in extent
/// order so runs are bit-comparable.
struct Harness {
  ir::LoopChain Chain;
  codegen::KernelRegistry Kernels;
  graph::Graph G;
  storage::StoragePlan Plan;
  ParamEnv Env;

  explicit Harness(ir::LoopChain C, std::int64_t N)
      : Chain(std::move(C)), G(graph::buildGraph(Chain)),
        Plan(storage::StoragePlan::build(G, /*UseAllocation=*/false)),
        Env{{"N", N}} {
    mfd::registerKernels(Chain, Kernels);
  }

  storage::ConcreteStorage freshStore() {
    storage::ConcreteStorage Store(Plan, Env);
    for (const std::string &Name : Chain.arrayNames()) {
      if (Chain.array(Name).Kind != ir::StorageKind::PersistentInput)
        continue;
      Chain.array(Name).Extent->forEachPoint(
          Env, [&](const std::vector<std::int64_t> &P) {
            double V = 1.0;
            for (std::size_t D = 0; D < P.size(); ++D)
              V += 0.001 * static_cast<double>((D + 3) * P[D]);
            Store.at(Name, P) = V;
          });
    }
    return Store;
  }

  std::vector<double> outputs(storage::ConcreteStorage &Store) {
    std::vector<double> Out;
    for (const std::string &Name : Chain.arrayNames()) {
      if (Chain.array(Name).Kind != ir::StorageKind::PersistentOutput)
        continue;
      Chain.array(Name).Extent->forEachPoint(
          Env, [&](const std::vector<std::int64_t> &P) {
            Out.push_back(Store.at(Name, P));
          });
    }
    return Out;
  }

  /// The scalar-serial oracle: the untransformed plan run on the lowest
  /// rung, the semantics every recovered run must reproduce exactly.
  std::vector<double> oracle() {
    storage::ConcreteStorage Store = freshStore();
    ExecutionPlan P = ExecutionPlan::fromChain(Chain, Store, Env);
    RunOptions O;
    O.Batched = false;
    O.Threads = 1;
    runPlan(P, Kernels, Store, O);
    return outputs(Store);
  }
};

void expectBitIdentical(const std::vector<double> &Expected,
                        const std::vector<double> &Got) {
  ASSERT_EQ(Expected.size(), Got.size());
  for (std::size_t I = 0; I < Expected.size(); ++I)
    EXPECT_EQ(Expected[I], Got[I]) << "flat index " << I;
}

} // namespace

TEST(Recovery, CleanRunCompletesWithoutDescents) {
  Harness S(mfd::buildChain2D(), 8);
  storage::ConcreteStorage Store = S.freshStore();
  ExecutionPlan Plan = ExecutionPlan::fromChain(S.Chain, Store, S.Env);

  RecoverOptions Opts;
  Opts.Run.Threads = 4;
  RunReport R = runWithRecovery(Plan, S.Kernels, Store, Opts);
  EXPECT_TRUE(R.Completed) << R.toString();
  EXPECT_FALSE(R.Recovered);
  EXPECT_TRUE(R.Descents.empty()) << R.toString();
  EXPECT_EQ(R.FinalRung.rfind("batched", 0), 0u) << R.FinalRung;
  expectBitIdentical(S.oracle(), S.outputs(Store));
}

TEST(Recovery, InjectedKernelThrowDescendsOneRungBitIdentical) {
  Harness S(mfd::buildChain2D(), 8);
  std::vector<double> Expected = S.oracle();

  storage::ConcreteStorage Store = S.freshStore();
  ExecutionPlan Plan = ExecutionPlan::fromChain(S.Chain, Store, S.Env);

  ScopedGlobalFault Fault(FaultSpec{FaultSite::Kernel, FaultKind::Throw, 1});
  RecoverOptions Opts;
  Opts.Run.Threads = 4;
  RunReport R = runWithRecovery(Plan, S.Kernels, Store, Opts);

  EXPECT_TRUE(R.Completed) << R.toString();
  EXPECT_TRUE(R.Recovered);
  ASSERT_EQ(R.Descents.size(), 1u) << R.toString();
  EXPECT_EQ(R.Descents[0].Reason, ReasonWorkerException);
  EXPECT_NE(R.Descents[0].Detail.find("E012-fault-injected"),
            std::string::npos)
      << R.Descents[0].Detail;
  EXPECT_EQ(FaultInjector::global().firedCount(), 1u);
  expectBitIdentical(Expected, S.outputs(Store));
}

TEST(Recovery, ListSchedulerDescentStaysBitIdentical) {
  // The injected-throw row again, but with the first rung running under
  // the work-stealing list scheduler: the ladder's snapshot/restore and
  // the retry rung must reproduce the oracle bit for bit regardless of
  // which strategy the failing attempt used.
  Harness S(mfd::buildChain2D(), 8);
  std::vector<double> Expected = S.oracle();

  storage::ConcreteStorage Store = S.freshStore();
  ExecutionPlan Plan = ExecutionPlan::fromChain(S.Chain, Store, S.Env);

  ScopedGlobalFault Fault(FaultSpec{FaultSite::Kernel, FaultKind::Throw, 1});
  RecoverOptions Opts;
  Opts.Run.Threads = 4;
  Opts.Run.Scheduler = SchedulerKind::List;
  RunReport R = runWithRecovery(Plan, S.Kernels, Store, Opts);

  EXPECT_TRUE(R.Completed) << R.toString();
  EXPECT_TRUE(R.Recovered);
  ASSERT_EQ(R.Descents.size(), 1u) << R.toString();
  EXPECT_EQ(R.Descents[0].Reason, ReasonWorkerException);
  expectBitIdentical(Expected, S.outputs(Store));
}

TEST(Recovery, InfeasibleBudgetWaivedViaL007) {
  // A 1-byte budget cannot admit any task: the run fails with E016, the
  // ladder waives the budget (scalar-serial, reason L007), and the
  // recovered output matches the oracle exactly.
  if (ThreadPool::effectiveThreads(2) < 2)
    GTEST_SKIP() << "serial initial runs waive the budget before the ladder";
  Harness S(mfd::buildChain2D(), 8);
  std::vector<double> Expected = S.oracle();

  storage::ConcreteStorage Store = S.freshStore();
  ExecutionPlan Plan = ExecutionPlan::fromChain(S.Chain, Store, S.Env);

  RecoverOptions Opts;
  Opts.Run.Threads = 2;
  Opts.Run.Scheduler = SchedulerKind::List;
  Opts.Run.MemBudget = 1;
  RunReport R = runWithRecovery(Plan, S.Kernels, Store, Opts);

  EXPECT_TRUE(R.Completed) << R.toString();
  EXPECT_TRUE(R.Recovered);
  ASSERT_EQ(R.Descents.size(), 1u) << R.toString();
  EXPECT_EQ(R.Descents[0].Reason, ReasonMemBudget);
  EXPECT_NE(R.Descents[0].Detail.find("E016"), std::string::npos)
      << R.Descents[0].Detail;
  EXPECT_EQ(R.FinalRung, "batched-serial");
  expectBitIdentical(Expected, S.outputs(Store));
}

TEST(Recovery, LateKernelThrowRestoresStoreBitIdentical) {
  // A fault that fires on the LAST task of the first attempt: every
  // earlier task has already completed and published its writes into
  // persistent spaces, and mfd's Diff kernels accumulate into the live
  // output (Current + DiffScale * ...). The retry rung must start from
  // the pre-attempt store — without the snapshot/restore, the completed
  // accumulating tasks apply twice and the recovered output silently
  // diverges from the oracle.
  Harness S(mfd::buildChain2D(), 8);
  std::vector<double> Expected = S.oracle();

  storage::ConcreteStorage Store = S.freshStore();
  ExecutionPlan Plan = ExecutionPlan::fromChain(S.Chain, Store, S.Env);
  ASSERT_GT(Plan.Tasks.size(), 1u);

  ScopedGlobalFault Fault(
      FaultSpec{FaultSite::Kernel, FaultKind::Throw,
                static_cast<unsigned>(Plan.Tasks.size())});
  RecoverOptions Opts;
  Opts.Run.Threads = 1; // Serial first rung: completions are deterministic.
  RunReport R = runWithRecovery(Plan, S.Kernels, Store, Opts);

  EXPECT_TRUE(R.Completed) << R.toString();
  EXPECT_TRUE(R.Recovered);
  ASSERT_EQ(R.Descents.size(), 1u) << R.toString();
  EXPECT_EQ(R.Descents[0].Reason, ReasonWorkerException);
  EXPECT_EQ(R.FinalRung, "scalar-serial");
  EXPECT_EQ(FaultInjector::global().firedCount(), 1u);
  expectBitIdentical(Expected, S.outputs(Store));
}

TEST(Recovery, InjectedTaskFailureFallsBackFromTiledPlan) {
  // A transformed (tile-parallel) plan as the fast path, the untransformed
  // chain lowering as the fallback: a task-level fault at the lowest
  // primary rung must cross over to the fallback plan and still match the
  // oracle bit for bit.
  Harness S(mfd::buildChain2D(), 8);
  std::vector<double> Expected = S.oracle();

  storage::ConcreteStorage Store = S.freshStore();
  tiling::ChainTiling Tiling = tiling::overlappedTiling(S.Chain, {4, 4}, S.Env);
  ExecutionPlan Tiled =
      ExecutionPlan::fromTiling(S.Chain, Tiling, Store, S.Env);

  storage::ConcreteStorage FbStore = S.freshStore();
  ExecutionPlan Fallback = ExecutionPlan::fromChain(S.Chain, FbStore, S.Env);

  ScopedGlobalFault Fault(FaultSpec{FaultSite::Task, FaultKind::Fail, 1});
  RecoverOptions Opts;
  Opts.Run.Threads = 1;
  Opts.Run.Batched = false; // Start on the lowest primary rung.
  Opts.Fallback = &Fallback;
  Opts.FallbackStore = &FbStore;
  RunReport R = runWithRecovery(Tiled, S.Kernels, Store, Opts);

  EXPECT_TRUE(R.Completed) << R.toString();
  EXPECT_TRUE(R.Recovered);
  ASSERT_EQ(R.Descents.size(), 1u) << R.toString();
  EXPECT_EQ(R.Descents[0].Reason, ReasonWorkerException);
  EXPECT_EQ(R.FinalRung, "fallback-scalar-serial");
  expectBitIdentical(Expected, S.outputs(FbStore));
}

TEST(Recovery, PersistentFailureExhaustsEveryRungWithE014) {
  // A kernel that always throws defeats every rung (the fallback runs the
  // same registry): the ladder must terminate with a structured
  // E014-exhausted report, one descent per rung, not hang or abort.
  parser::ParseResult PR = parser::parseLoopChain(R"(
#pragma omplc parallel(fuse)
{
#pragma omplc for domain(0:N-1) with (x) \
    write OUT{(x)} read IN{(x)}
S1: OUT(x) = func1(IN(x));
}
)");
  ASSERT_TRUE(static_cast<bool>(PR)) << PR.Error;
  ir::LoopChain Chain = std::move(*PR.Chain);
  codegen::KernelRegistry Kernels;
  Chain.nest(0).KernelId =
      Kernels.add([](const std::vector<double> &, double) -> double {
        throw std::runtime_error("persistent kernel failure");
      });

  graph::Graph G = graph::buildGraph(Chain);
  ParamEnv Env{{"N", 8}};
  storage::StoragePlan SPlan =
      storage::StoragePlan::build(G, /*UseAllocation=*/false);
  storage::ConcreteStorage Store(SPlan, Env);
  ExecutionPlan Plan = ExecutionPlan::fromChain(Chain, Store, Env);

  storage::ConcreteStorage FbStore(SPlan, Env);
  ExecutionPlan Fallback = ExecutionPlan::fromChain(Chain, FbStore, Env);

  RecoverOptions Opts;
  Opts.Run.Threads = 4;
  Opts.Fallback = &Fallback;
  Opts.FallbackStore = &FbStore;
  RunReport R = runWithRecovery(Plan, Kernels, Store, Opts);

  EXPECT_FALSE(R.Completed);
  EXPECT_EQ(R.Error.code(), support::ErrorCode::Exhausted) << R.toString();
  // batched-parallel, scalar-parallel, scalar-serial, fallback.
  EXPECT_EQ(R.Descents.size(), 4u) << R.toString();
  for (const RunReport::Descent &D : R.Descents)
    EXPECT_EQ(D.Reason, ReasonWorkerException);
  EXPECT_EQ(R.FinalRung, "fallback-scalar-serial");
  EXPECT_NE(R.toJson().find("\"E014-exhausted\""), std::string::npos)
      << R.toJson();
}

namespace {

/// Figure 1, where fusion + storage reduction produces the rolling VAL_1
/// window targeted by modulo:corrupt.
constexpr const char *Fig1 = R"(
#pragma omplc parallel(fuse)
{
#pragma omplc for domain(0:N, 0:N-1) with (x, y) \
    write VAL_1{(x,y)} read VAL_0{(x,y)}
S1: VAL_1(x,y) = func1(VAL_0(x,y));
#pragma omplc for domain(0:N-1, 0:N-1) with (x, y) \
    write VAL_2{(x,y)} read VAL_1{(x,y),(x+1,y)}
S2: VAL_2(x,y) = func2(VAL_1(x,y), VAL_1(x+1,y));
}
)";

void seedInputs(ir::LoopChain &Chain, storage::ConcreteStorage &Store,
                const ParamEnv &Env) {
  for (const std::string &Name : Chain.arrayNames()) {
    if (Chain.array(Name).Kind != ir::StorageKind::PersistentInput)
      continue;
    Chain.array(Name).Extent->forEachPoint(
        Env, [&](const std::vector<std::int64_t> &P) {
          double V = 1.0;
          for (std::size_t D = 0; D < P.size(); ++D)
            V += 0.001 * static_cast<double>((D + 3) * P[D]);
          Store.at(Name, P) = V;
        });
  }
}

std::vector<double> collectOutputs(ir::LoopChain &Chain,
                                   storage::ConcreteStorage &Store,
                                   const ParamEnv &Env) {
  std::vector<double> Out;
  for (const std::string &Name : Chain.arrayNames()) {
    if (Chain.array(Name).Kind != ir::StorageKind::PersistentOutput)
      continue;
    Chain.array(Name).Extent->forEachPoint(
        Env, [&](const std::vector<std::int64_t> &P) {
          Out.push_back(Store.at(Name, P));
        });
  }
  return Out;
}

void registerFigKernels(ir::LoopChain &Chain,
                        codegen::KernelRegistry &Kernels) {
  for (unsigned I = 0; I < Chain.numNests(); ++I) {
    double Bias = 0.125 + 0.03125 * static_cast<double>(I);
    Chain.nest(I).KernelId =
        Kernels.add([Bias](const std::vector<double> &R, double) {
          double V = Bias;
          double W = 0.25;
          for (double X : R) {
            V += W * X;
            W *= 0.75;
          }
          return V;
        });
  }
}

} // namespace

TEST(Recovery, ModuloCorruptionCaughtByStrictVerifyGate) {
  // The structural campaign: a one-element shrink of a rolling window is
  // invisible to runtime exception handling (the run would just produce
  // wrong numbers), so the strict verifier gate must catch it statically
  // and send the ladder to the fallback plan.
  parser::ParseResult PR = parser::parseLoopChain(Fig1);
  ASSERT_TRUE(static_cast<bool>(PR)) << PR.Error;
  ir::LoopChain Chain = std::move(*PR.Chain);
  codegen::KernelRegistry Kernels;
  registerFigKernels(Chain, Kernels);
  ParamEnv Env{{"N", 8}};

  // Fast path: fused, storage-reduced schedule (rolling VAL_1 window).
  graph::Graph G = graph::buildGraph(Chain);
  ASSERT_TRUE(static_cast<bool>(parser::runScript(G, "fusepc S1 S2\n")));
  storage::reduceStorage(G);
  storage::StoragePlan SPlan =
      storage::StoragePlan::build(G, /*UseAllocation=*/true);
  storage::ConcreteStorage Store(SPlan, Env);
  seedInputs(Chain, Store, Env);
  codegen::AstPtr Ast = codegen::generate(G);
  ExecutionPlan Plan = ExecutionPlan::fromAst(G, *Ast, Store, Env);

  // Fallback: the untransformed chain against full storage.
  graph::Graph G0 = graph::buildGraph(Chain);
  storage::StoragePlan FbPlan =
      storage::StoragePlan::build(G0, /*UseAllocation=*/false);
  storage::ConcreteStorage FbStore(FbPlan, Env);
  seedInputs(Chain, FbStore, Env);
  ExecutionPlan Fallback = ExecutionPlan::fromChain(Chain, FbStore, Env);

  // Oracle: the fallback schedule on the lowest rung, pristine storage.
  storage::ConcreteStorage OracleStore(FbPlan, Env);
  seedInputs(Chain, OracleStore, Env);
  {
    ExecutionPlan OraclePlan =
        ExecutionPlan::fromChain(Chain, OracleStore, Env);
    RunOptions O;
    O.Batched = false;
    runPlan(OraclePlan, Kernels, OracleStore, O);
  }
  std::vector<double> Expected = collectOutputs(Chain, OracleStore, Env);

  ScopedGlobalFault Fault(FaultSpec{FaultSite::Modulo, FaultKind::Corrupt, 1});
  RecoverOptions Opts;
  Opts.StrictVerify = true;
  Opts.Fallback = &Fallback;
  Opts.FallbackStore = &FbStore;
  RunReport R = runWithRecovery(Plan, Kernels, Store, Opts);

  EXPECT_TRUE(R.Completed) << R.toString();
  EXPECT_TRUE(R.Recovered);
  ASSERT_FALSE(R.Descents.empty());
  EXPECT_EQ(R.Descents[0].Reason, ReasonVerifierError) << R.toString();
  EXPECT_EQ(R.FinalRung, "fallback-scalar-serial");
  expectBitIdentical(Expected, collectOutputs(Chain, FbStore, Env));
  // The caller's plan object stays pristine: corruption lives on a copy.
  bool AnyShrunk = false;
  for (const NestInstr &I : Plan.Instrs)
    for (const StmtRecord &St : I.Stmts) {
      if (St.Write.Modulo && St.Write.ModSize <= 1)
        AnyShrunk = true;
    }
  EXPECT_FALSE(AnyShrunk);
}

TEST(Recovery, TruncatedInputTerminatesStructurally) {
  // input:truncate halves a persistent backing space under the plan's
  // feet. Every rung (including a fallback sharing the same store) must be
  // refused deterministically by plan-vs-storage validation — a structured
  // E014 report, not an out-of-bounds read.
  Harness S(mfd::buildChain2D(), 8);
  storage::ConcreteStorage Store = S.freshStore();
  ExecutionPlan Plan = ExecutionPlan::fromChain(S.Chain, Store, S.Env);
  ExecutionPlan Fallback = Plan; // Shares the (truncated) primary store.

  ScopedGlobalFault Fault(FaultSpec{FaultSite::Input, FaultKind::Truncate, 1});
  RecoverOptions Opts;
  Opts.Run.Threads = 2;
  Opts.Fallback = &Fallback;
  RunReport R = runWithRecovery(Plan, S.Kernels, Store, Opts);

  EXPECT_FALSE(R.Completed) << R.toString();
  EXPECT_EQ(R.Error.code(), support::ErrorCode::Exhausted);
  ASSERT_EQ(R.Descents.size(), 2u) << R.toString();
  EXPECT_EQ(R.Descents[0].Reason, ReasonPlanInvalid);
  EXPECT_EQ(R.Descents[1].Reason, ReasonPlanInvalid);
  EXPECT_NE(R.Error.toString().find("E008-plan-invalid"), std::string::npos)
      << R.Error.toString();
  EXPECT_NE(R.toJson().find("L006-plan-invalid"), std::string::npos);
}

TEST(Recovery, HardenedModePassesCleanPlans) {
  // The guardrails must be invisible on legal schedules: canaries intact,
  // no NaN in any persistent space, and the published outputs bit-equal to
  // an unhardened run — untiled serial, untiled parallel, and
  // tile-parallel with privatized temporaries.
  Harness S(mfd::buildChain2D(), 8);
  std::vector<double> Expected = S.oracle();

  for (int Threads : {1, 4}) {
    storage::ConcreteStorage Store = S.freshStore();
    ExecutionPlan Plan = ExecutionPlan::fromChain(S.Chain, Store, S.Env);
    RunOptions O;
    O.Threads = Threads;
    O.Harden = true;
    runPlan(Plan, S.Kernels, Store, O);
    expectBitIdentical(Expected, S.outputs(Store));
  }
  {
    storage::ConcreteStorage Store = S.freshStore();
    tiling::ChainTiling Tiling =
        tiling::overlappedTiling(S.Chain, {4, 4}, S.Env);
    ExecutionPlan Tiled =
        ExecutionPlan::fromTiling(S.Chain, Tiling, Store, S.Env);
    RunOptions O;
    O.Threads = 2;
    O.Harden = true;
    runPlan(Tiled, S.Kernels, Store, O);
    expectBitIdentical(Expected, S.outputs(Store));
  }
}

TEST(Recovery, NanGuardCatchesReadBeforeWrite) {
  // Reversing the task order of a chain plan runs consumers before their
  // producers; the scheduled reads hit NaN-poisoned temporaries and the
  // poison must surface as E013 instead of leaking stale zeros into the
  // outputs — and the store must be left untouched.
  Harness S(mfd::buildChain2D(), 8);
  storage::ConcreteStorage Store = S.freshStore();
  ExecutionPlan Plan = ExecutionPlan::fromChain(S.Chain, Store, S.Env);
  ASSERT_GT(Plan.Tasks.size(), 1u);
  std::reverse(Plan.Tasks.begin(), Plan.Tasks.end());

  std::vector<double> Before = S.outputs(Store);
  RunOptions O;
  O.Batched = false;
  O.Harden = true;
  try {
    runPlan(Plan, S.Kernels, Store, O);
    FAIL() << "NaN guard did not trip";
  } catch (const support::StatusError &E) {
    EXPECT_EQ(E.status().code(), support::ErrorCode::GuardTripped);
    EXPECT_NE(E.status().message().find("NaN"), std::string::npos)
        << E.status().toString();
  }
  expectBitIdentical(Before, S.outputs(Store));
}

TEST(Recovery, NanGuardDescendsToFallbackPlan) {
  // The same read-before-write plan under the ladder: L005 descent, then
  // the fallback plan completes hardened and bit-identical to the oracle.
  Harness S(mfd::buildChain2D(), 8);
  std::vector<double> Expected = S.oracle();

  storage::ConcreteStorage Store = S.freshStore();
  ExecutionPlan Broken = ExecutionPlan::fromChain(S.Chain, Store, S.Env);
  std::reverse(Broken.Tasks.begin(), Broken.Tasks.end());

  storage::ConcreteStorage FbStore = S.freshStore();
  ExecutionPlan Fallback = ExecutionPlan::fromChain(S.Chain, FbStore, S.Env);

  RecoverOptions Opts;
  Opts.Run.Batched = false;
  Opts.Run.Harden = true;
  Opts.Fallback = &Fallback;
  Opts.FallbackStore = &FbStore;
  RunReport R = runWithRecovery(Broken, S.Kernels, Store, Opts);

  EXPECT_TRUE(R.Completed) << R.toString();
  EXPECT_TRUE(R.Recovered);
  ASSERT_EQ(R.Descents.size(), 1u) << R.toString();
  EXPECT_EQ(R.Descents[0].Reason, ReasonNanGuard);
  EXPECT_EQ(R.FinalRung, "fallback-scalar-serial");
  expectBitIdentical(Expected, S.outputs(FbStore));
}
