//===- tests/exec/ExecutionPlanTest.cpp -----------------------------------===//
//
// The compiled execution layer end to end. Two properties anchor it:
// (a) plan-based tiled execution is bit-identical to the serial untiled
//     run for the MiniFluxDiv chains at several thread counts, and
// (b) the runner's per-edge read instrumentation reproduces the exact
//     traffic enumeration of graph::Traffic on the series schedule.
//
//===----------------------------------------------------------------------===//

#include "exec/ExecutionPlan.h"
#include "exec/PlanRunner.h"

#include "codegen/Generator.h"
#include "graph/GraphBuilder.h"
#include "graph/Traffic.h"
#include "minifluxdiv/Spec.h"
#include "tiling/TiledExecutor.h"

#include <gtest/gtest.h>

using namespace lcdfg;
using namespace lcdfg::exec;

namespace {

/// Storage + inputs for a chain at size N; mirrors the tiling test harness
/// so plan-based results stay comparable across suites.
struct Harness {
  ir::LoopChain Chain;
  codegen::KernelRegistry Kernels;
  graph::Graph G;
  storage::StoragePlan Plan;
  ParamEnv Env;

  explicit Harness(ir::LoopChain C, std::int64_t N)
      : Chain(std::move(C)), G(graph::buildGraph(Chain)),
        Plan(storage::StoragePlan::build(G, /*UseAllocation=*/false)),
        Env{{"N", N}} {
    mfd::registerKernels(Chain, Kernels);
  }

  storage::ConcreteStorage freshStore() {
    storage::ConcreteStorage Store(Plan, Env);
    for (const std::string &Name : Chain.arrayNames()) {
      if (Chain.array(Name).Kind != ir::StorageKind::PersistentInput)
        continue;
      Chain.array(Name).Extent->forEachPoint(
          Env, [&](const std::vector<std::int64_t> &P) {
            double V = 1.0;
            for (std::size_t D = 0; D < P.size(); ++D)
              V += 0.001 * static_cast<double>((D + 3) * P[D]);
            Store.at(Name, P) = V;
          });
    }
    return Store;
  }

  std::vector<double> outputs(storage::ConcreteStorage &Store) {
    std::vector<double> Out;
    for (const std::string &Name : Chain.arrayNames()) {
      if (Chain.array(Name).Kind != ir::StorageKind::PersistentOutput)
        continue;
      Chain.array(Name).Extent->forEachPoint(
          Env, [&](const std::vector<std::int64_t> &P) {
            Out.push_back(Store.at(Name, P));
          });
    }
    return Out;
  }
};

void expectBitIdentical(const std::vector<double> &Expected,
                        const std::vector<double> &Got) {
  ASSERT_EQ(Expected.size(), Got.size());
  for (std::size_t I = 0; I < Expected.size(); ++I) {
    // Bit-identical, not approximately equal: tiles replay the same
    // kernel applications in the same per-element order.
    EXPECT_EQ(Expected[I], Got[I]) << "flat index " << I;
  }
}

} // namespace

class TiledPlan2D : public ::testing::TestWithParam<int> {};

TEST_P(TiledPlan2D, ParallelTilesMatchSerialUntiled) {
  std::int64_t N = 8;
  Harness S(mfd::buildChain2D(), N);

  storage::ConcreteStorage Ref = S.freshStore();
  tiling::executeUntiled(S.Chain, S.Kernels, Ref, S.Env);
  std::vector<double> Expected = S.outputs(Ref);

  int T = GetParam();
  tiling::ChainTiling Tiling =
      tiling::overlappedTiling(S.Chain, {T, T}, S.Env);
  for (int Threads : {1, 2, 4}) {
    storage::ConcreteStorage Store = S.freshStore();
    tiling::executeTiled(S.Chain, Tiling, S.Kernels, Store, S.Env, Threads);
    expectBitIdentical(Expected, S.outputs(Store));
  }
}

INSTANTIATE_TEST_SUITE_P(TileSizes, TiledPlan2D,
                         ::testing::Values(2, 3, 4, 8));

TEST(TiledPlan, ThreeDimensionalChainAcrossThreadCounts) {
  std::int64_t N = 4;
  Harness S(mfd::buildChain3D(), N);

  storage::ConcreteStorage Ref = S.freshStore();
  tiling::executeUntiled(S.Chain, S.Kernels, Ref, S.Env);
  std::vector<double> Expected = S.outputs(Ref);

  tiling::ChainTiling Tiling =
      tiling::overlappedTiling(S.Chain, {2, 2, 0}, S.Env);
  for (int Threads : {1, 2, 4}) {
    storage::ConcreteStorage Store = S.freshStore();
    tiling::executeTiled(S.Chain, Tiling, S.Kernels, Store, S.Env, Threads);
    expectBitIdentical(Expected, S.outputs(Store));
  }
}

TEST(TiledPlan, OverlappedTilingCompilesTileParallel) {
  // Expanded producers write worker-private temporaries and the
  // accumulating terminals partition across tiles, so the compiled plan
  // must mark tiles runnable in parallel.
  std::int64_t N = 8;
  Harness S(mfd::buildChain2D(), N);
  storage::ConcreteStorage Store = S.freshStore();
  tiling::ChainTiling Tiling =
      tiling::overlappedTiling(S.Chain, {4, 4}, S.Env);
  ExecutionPlan Plan =
      ExecutionPlan::fromTiling(S.Chain, Tiling, Store, S.Env);
  EXPECT_TRUE(Plan.TileParallel);
  ASSERT_FALSE(Plan.Instrs.empty());
  for (const NestInstr &Instr : Plan.Instrs)
    EXPECT_GE(Instr.Tile, 0);
  EXPECT_FALSE(Plan.dump().empty());
  // Tile-parallel plans carry no cross-tile dependences.
  for (const PlanTask &Task : Plan.Tasks)
    for (int D : Task.Deps)
      EXPECT_EQ(Plan.Instrs[Plan.Tasks[D].Instr].Tile,
                Plan.Instrs[Task.Instr].Tile);
}

TEST(PlanUntiled, ConflictScheduledParallelRunMatchesSerial) {
  // The untiled parallel path (instruction wavefronts over shared storage,
  // dependences from storage-space conflicts) must agree with task order.
  std::int64_t N = 8;
  Harness S(mfd::buildChain2D(), N);

  storage::ConcreteStorage Ref = S.freshStore();
  tiling::executeUntiled(S.Chain, S.Kernels, Ref, S.Env);
  std::vector<double> Expected = S.outputs(Ref);

  for (int Threads : {2, 4}) {
    storage::ConcreteStorage Store = S.freshStore();
    tiling::executeUntiled(S.Chain, S.Kernels, Store, S.Env, Threads);
    expectBitIdentical(Expected, S.outputs(Store));
  }
}

TEST(PlanStatsTest, EdgeReadsMatchTrafficOnSeriesSchedule) {
  // Property (b): per-edge Distinct x Multiplicity equals the exact
  // enumeration of graph::Traffic, edge by edge and in total.
  std::int64_t N = 6;
  Harness S(mfd::buildChain2D(), N);
  storage::ConcreteStorage Store = S.freshStore();

  ExecutionPlan Plan = ExecutionPlan::fromChain(S.Chain, Store, S.Env, &S.G);
  RunOptions Opts;
  Opts.CollectStats = true;
  PlanStats PS = runPlan(Plan, S.Kernels, Store, Opts);

  graph::TrafficReport TR = graph::measureTraffic(S.G, N);
  ASSERT_EQ(PS.Edges.size(), TR.EdgeReads.size());
  for (const PlanStats::EdgeStat &E : PS.Edges) {
    auto It = TR.EdgeReads.find({E.Array, E.Consumer});
    ASSERT_NE(It, TR.EdgeReads.end()) << E.Array << " -> " << E.Consumer;
    EXPECT_EQ(E.total(), It->second) << E.Array << " -> " << E.Consumer;
    EXPECT_GE(E.Raw, E.Distinct);
  }
  EXPECT_EQ(PS.totalRead(), TR.Total);
  // On the series schedule S_R is exact, and the measured counters must
  // land on the same number the symbolic model predicts.
  EXPECT_EQ(PS.totalRead(), TR.ModelTotal);

  // Node stats cover every nest with its full point count.
  ASSERT_EQ(PS.Nodes.size(), static_cast<std::size_t>(S.Chain.numNests()));
  for (const PlanStats::NodeStat &Node : PS.Nodes)
    EXPECT_GT(Node.Points, 0) << Node.Label;
}

TEST(PlanStatsTest, AstPlanCountsMatchChainPlan) {
  // Lowering through the generated AST must not change what is read:
  // same edges, same distinct counts as the direct chain lowering.
  std::int64_t N = 5;
  Harness S(mfd::buildChain2D(), N);

  storage::ConcreteStorage StoreA = S.freshStore();
  ExecutionPlan ChainPlan =
      ExecutionPlan::fromChain(S.Chain, StoreA, S.Env, &S.G);
  RunOptions Opts;
  Opts.CollectStats = true;
  PlanStats A = runPlan(ChainPlan, S.Kernels, StoreA, Opts);

  storage::ConcreteStorage StoreB = S.freshStore();
  codegen::AstPtr Ast = codegen::generate(S.G);
  ExecutionPlan AstPlan = ExecutionPlan::fromAst(S.G, *Ast, StoreB, S.Env);
  PlanStats B = runPlan(AstPlan, S.Kernels, StoreB, Opts);

  expectBitIdentical(S.outputs(StoreA), S.outputs(StoreB));
  ASSERT_EQ(A.Edges.size(), B.Edges.size());
  for (std::size_t I = 0; I < A.Edges.size(); ++I) {
    EXPECT_EQ(A.Edges[I].Array, B.Edges[I].Array);
    EXPECT_EQ(A.Edges[I].Consumer, B.Edges[I].Consumer);
    EXPECT_EQ(A.Edges[I].Distinct, B.Edges[I].Distinct)
        << A.Edges[I].Array << " -> " << A.Edges[I].Consumer;
  }
}
