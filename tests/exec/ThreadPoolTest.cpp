//===- tests/exec/ThreadPoolTest.cpp --------------------------------------===//
//
// The scheduling substrate of the execution layer: the persistent thread
// pool behind rt::parallelFor (dynamic claiming, exception propagation,
// serial nesting, LCDFG_THREADS capping) and the dependence-respecting
// TaskGraph wavefront runner.
//
//===----------------------------------------------------------------------===//

#include "exec/TaskGraph.h"
#include "exec/ThreadPool.h"

#include "runtime/Parallel.h"
#include "support/Status.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <set>
#include <stdexcept>
#include <vector>

using namespace lcdfg;
using namespace lcdfg::exec;

namespace {

/// Saves and restores LCDFG_THREADS around a test.
struct ScopedThreadsEnv {
  std::string Saved;
  bool HadValue;
  explicit ScopedThreadsEnv(const char *Value) {
    const char *Old = std::getenv("LCDFG_THREADS");
    HadValue = Old != nullptr;
    if (HadValue)
      Saved = Old;
    if (Value)
      setenv("LCDFG_THREADS", Value, 1);
    else
      unsetenv("LCDFG_THREADS");
  }
  ~ScopedThreadsEnv() {
    if (HadValue)
      setenv("LCDFG_THREADS", Saved.c_str(), 1);
    else
      unsetenv("LCDFG_THREADS");
  }
};

} // namespace

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  const int Count = 200;
  std::vector<std::atomic<int>> Hits(Count);
  ThreadPool::global().parallelFor(Count, 4, [&](int I) { ++Hits[I]; });
  for (int I = 0; I < Count; ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "index " << I;
}

TEST(ThreadPool, ParticipantIdsAreBounded) {
  // Workers may drain a small region before the caller claims an index,
  // so which ids appear is timing-dependent — but every id must lie
  // inside the requested budget, and every index must still run.
  const int Count = 64;
  std::mutex Mu;
  std::set<int> Seen;
  std::atomic<int> Ran{0};
  ThreadPool::global().parallelForWorker(Count, 3, [&](int, int Participant) {
    ++Ran;
    std::lock_guard<std::mutex> Lock(Mu);
    Seen.insert(Participant);
  });
  EXPECT_EQ(Ran.load(), Count);
  ASSERT_FALSE(Seen.empty());
  EXPECT_GE(*Seen.begin(), 0);
  EXPECT_LT(*Seen.rbegin(), 3);
}

TEST(ThreadPool, PropagatesFirstException) {
  EXPECT_THROW(ThreadPool::global().parallelFor(
                   50, 4,
                   [](int I) {
                     if (I == 17)
                       throw std::runtime_error("boom");
                   }),
               std::runtime_error);
  // The pool survives a throwing region and runs the next one normally.
  std::atomic<int> Sum{0};
  ThreadPool::global().parallelFor(10, 4, [&](int I) { Sum += I; });
  EXPECT_EQ(Sum.load(), 45);
}

TEST(ThreadPool, NestedRegionsRunSerialInline) {
  // A region launched from inside a worker must not deadlock waiting for
  // pool capacity; it degrades to a serial loop on the calling worker.
  std::atomic<int> Total{0};
  ThreadPool::global().parallelFor(4, 4, [&](int) {
    ThreadPool::global().parallelFor(8, 4, [&](int) { ++Total; });
  });
  EXPECT_EQ(Total.load(), 32);
}

TEST(ThreadPool, EffectiveThreadsHonorsEnvCap) {
  {
    ScopedThreadsEnv Env("2");
    EXPECT_EQ(ThreadPool::effectiveThreads(8), 2);
    EXPECT_EQ(ThreadPool::effectiveThreads(1), 1);
  }
  {
    ScopedThreadsEnv Env(nullptr);
    EXPECT_EQ(ThreadPool::effectiveThreads(8), 8);
    EXPECT_EQ(ThreadPool::effectiveThreads(0), 1) << "requests clamp to 1";
  }
}

TEST(RuntimeParallelFor, RoutesThroughPoolAndThrows) {
  std::vector<std::atomic<int>> Hits(33);
  rt::parallelFor(33, 4, [&](int I) { ++Hits[I]; });
  for (int I = 0; I < 33; ++I)
    EXPECT_EQ(Hits[I].load(), 1);
  EXPECT_THROW(rt::parallelFor(4, 2,
                               [](int) { throw std::logic_error("bad"); }),
               std::logic_error);
}

TEST(TaskGraph, WavefrontsFollowLongestPathDepth) {
  // Diamond: 0 -> {1, 2} -> 3.
  TaskGraph TG;
  for (int I = 0; I < 4; ++I)
    TG.addTask([](int) {});
  TG.addDependence(0, 1);
  TG.addDependence(0, 2);
  TG.addDependence(1, 3);
  TG.addDependence(2, 3);
  std::vector<std::vector<int>> Waves = TG.wavefronts();
  ASSERT_EQ(Waves.size(), 3u);
  EXPECT_EQ(Waves[0], (std::vector<int>{0}));
  EXPECT_EQ(Waves[1], (std::vector<int>{1, 2}));
  EXPECT_EQ(Waves[2], (std::vector<int>{3}));
}

TEST(TaskGraph, RunRespectsDependences) {
  // A chain interleaved with independent tasks: each task records the
  // completion set it observed; dependences must already be in it.
  TaskGraph TG;
  std::mutex Mu;
  std::set<int> Done;
  auto Record = [&](int Id, std::vector<int> Deps) {
    return [&, Id, Deps = std::move(Deps)](int) {
      std::lock_guard<std::mutex> Lock(Mu);
      for (int D : Deps)
        EXPECT_TRUE(Done.count(D)) << "task " << Id << " ran before dep " << D;
      Done.insert(Id);
    };
  };
  int A = TG.addTask(Record(0, {}));
  int B = TG.addTask(Record(1, {0}));
  int C = TG.addTask(Record(2, {}));
  int D = TG.addTask(Record(3, {1, 2}));
  TG.addDependence(A, B);
  TG.addDependence(B, D);
  TG.addDependence(C, D);
  TG.run(4);
  EXPECT_EQ(Done.size(), 4u);
}

TEST(ThreadPool, FirstExceptionWinsUnderContention) {
  // Many iterations throw; exactly one exception surfaces and the pool
  // drains cleanly at both throttled thread counts.
  for (const char *Threads : {"2", "4"}) {
    ScopedThreadsEnv Env(Threads);
    std::atomic<int> Ran{0};
    try {
      ThreadPool::global().parallelFor(100, 8, [&](int I) {
        if (I % 10 == 3)
          throw std::runtime_error("injected worker fault " +
                                   std::to_string(I));
        ++Ran;
      });
      FAIL() << "expected the injected fault to propagate";
    } catch (const std::runtime_error &E) {
      EXPECT_NE(std::string(E.what()).find("injected worker fault"),
                std::string::npos);
    }
    // Drained: a follow-up region on the same pool covers every index.
    std::atomic<int> Sum{0};
    ThreadPool::global().parallelFor(32, 8, [&](int I) { Sum += I; });
    EXPECT_EQ(Sum.load(), 32 * 31 / 2) << "LCDFG_THREADS=" << Threads;
  }
}

TEST(TaskGraph, WorkerExceptionPropagatesAndPoolSurvives) {
  // A failing task-graph node must surface its exception at run() without
  // deadlocking the wavefront scheduler, and the graph/pool must be
  // reusable for a clean run afterwards.
  for (const char *Threads : {"2", "4"}) {
    ScopedThreadsEnv Env(Threads);
    std::atomic<int> Completed{0};
    TaskGraph Failing;
    int A = Failing.addTask([&](int) { ++Completed; });
    int B = Failing.addTask(
        [](int) { throw std::runtime_error("node fault"); });
    Failing.addDependence(A, B);
    EXPECT_THROW(Failing.run(4), std::runtime_error);
    EXPECT_EQ(Completed.load(), 1) << "dependency ran before the fault";

    TaskGraph Clean;
    std::atomic<int> Ran{0};
    for (int I = 0; I < 16; ++I)
      Clean.addTask([&](int) { ++Ran; });
    Clean.run(4);
    EXPECT_EQ(Ran.load(), 16) << "LCDFG_THREADS=" << Threads;
  }
}

TEST(TaskGraph, StatusErrorCrossesWorkerBoundaryIntact) {
  // Structured errors raised inside a worker (the fault injector's
  // delivery path) must arrive at the caller as StatusError, code and
  // message preserved — the degradation ladder classifies on both.
  TaskGraph TG;
  TG.addTask([](int) {
    support::raise(support::ErrorCode::FaultInjected,
                   "injected fault: kernel:throw");
  });
  try {
    TG.run(2);
    FAIL() << "expected StatusError";
  } catch (const support::StatusError &E) {
    EXPECT_EQ(E.status().code(), support::ErrorCode::FaultInjected);
    EXPECT_NE(E.status().message().find("kernel:throw"), std::string::npos);
  }
}

TEST(TaskGraph, CycleRaisesStructuredError) {
  TaskGraph TG;
  int A = TG.addTask([](int) {});
  int B = TG.addTask([](int) {});
  TG.addDependence(A, B);
  TG.addDependence(B, A);
  try {
    TG.wavefronts();
    FAIL() << "expected StatusError";
  } catch (const support::StatusError &E) {
    EXPECT_EQ(E.status().code(), support::ErrorCode::DependenceCycle);
    EXPECT_NE(E.status().message().find("cycle"), std::string::npos);
  }
}
