//===- tests/exec/RowPlanTest.cpp -----------------------------------------===//
//
// The row-batching compilation stage. Two layers of coverage:
// (a) hand-built single-nest plans stress the segment walker directly —
//     modulo rows crossing the wrap boundary one or more times, negative
//     pre-wrap bases, stride-0 broadcast reads, guard sub-ranges — against
//     a scalar reference that mirrors the runner's interpreter; and
// (b) whole schedules (untiled chain, fused+reduced AST, overlapped
//     tilings) run through runPlan with batching on and off must produce
//     bit-identical storage at thread counts 1, 2, 4.
//
//===----------------------------------------------------------------------===//

#include "exec/RowPlan.h"

#include "codegen/Generator.h"
#include "exec/PlanRunner.h"
#include "graph/GraphBuilder.h"
#include "minifluxdiv/Spec.h"
#include "storage/ReuseDistance.h"

#include <gtest/gtest.h>

using namespace lcdfg;
using namespace lcdfg::exec;

namespace {

//===----------------------------------------------------------------------===//
// Hand-built plans vs a scalar mirror of the interpreter.
//===----------------------------------------------------------------------===//

/// Batched sum-of-reads accumulating into the target, matching the scalar
/// lambda registered next to it.
template <int Arity>
void batchedSum(double *W, const double *const *R, const std::int64_t *S,
                std::int64_t WS, std::int64_t N) {
  for (std::int64_t I = 0; I < N; ++I) {
    double Sum = W[I * WS];
    for (int J = 0; J < Arity; ++J)
      Sum += R[J][I * S[J]];
    W[I * WS] = Sum;
  }
}

double scalarSum(const std::vector<double> &Reads, double Current) {
  double Sum = Current;
  for (double R : Reads)
    Sum += R;
  return Sum;
}

/// Mirrors PlanRunner's scalar interpretation of one instruction: guards,
/// per-point dot product, floored modulo wrap, kernel call per admitted
/// statement instance.
void scalarReference(const NestInstr &I,
                     const codegen::KernelRegistry &Kernels,
                     double *const *Spaces) {
  const int L = static_cast<int>(I.Loops.size());
  std::vector<std::int64_t> Iter(L);
  for (int Lv = 0; Lv < L; ++Lv) {
    if (I.Loops[Lv].Lo > I.Loops[Lv].Hi)
      return;
    Iter[Lv] = I.Loops[Lv].Lo;
  }
  std::vector<double> Reads;
  for (;;) {
    for (const StmtRecord &S : I.Stmts) {
      bool Admit = true;
      for (const GuardBound &Gd : S.Guards)
        if (Iter[Gd.Level] < Gd.Lo || Iter[Gd.Level] > Gd.Hi) {
          Admit = false;
          break;
        }
      if (!Admit)
        continue;
      Reads.clear();
      for (const Stream &R : S.Reads) {
        std::int64_t Lin = R.Base;
        for (int Lv = 0; Lv < L; ++Lv)
          Lin += Iter[Lv] * R.LevelStrides[Lv];
        if (R.Modulo) {
          Lin %= R.ModSize;
          if (Lin < 0)
            Lin += R.ModSize;
        }
        Reads.push_back(Spaces[R.Space][Lin]);
      }
      std::int64_t Lin = S.Write.Base;
      for (int Lv = 0; Lv < L; ++Lv)
        Lin += Iter[Lv] * S.Write.LevelStrides[Lv];
      if (S.Write.Modulo) {
        Lin %= S.Write.ModSize;
        if (Lin < 0)
          Lin += S.Write.ModSize;
      }
      double &Target = Spaces[S.Write.Space][Lin];
      Target = Kernels.get(S.KernelId)(Reads, Target);
    }
    int Lv = L - 1;
    for (; Lv >= 0; --Lv) {
      if (++Iter[Lv] <= I.Loops[Lv].Hi)
        break;
      Iter[Lv] = I.Loops[Lv].Lo;
    }
    if (Lv < 0)
      return;
  }
}

/// Two space tables over identical deterministic contents; runs the
/// scalar mirror on one and the compiled RowPlan on the other and
/// requires bit-identical buffers plus exact instance/load counts.
struct MicroHarness {
  codegen::KernelRegistry Kernels;
  std::vector<std::vector<double>> A, B;

  MicroHarness() {
    Kernels.add(scalarSum, batchedSum<1>); // kernel 0: one read
    Kernels.add(scalarSum, batchedSum<2>); // kernel 1: two reads
  }

  void addSpace(std::size_t Size) {
    std::vector<double> Buf(Size);
    for (std::size_t I = 0; I < Size; ++I)
      Buf[I] = 0.25 + 0.001 * static_cast<double>((I * 2654435761u) % 977u);
    A.push_back(Buf);
    B.push_back(std::move(Buf));
  }

  void check(const NestInstr &I, std::int64_t ExpectPoints,
             std::int64_t ExpectReads) {
    std::vector<double *> TA, TB;
    for (std::size_t S = 0; S < A.size(); ++S) {
      TA.push_back(A[S].data());
      TB.push_back(B[S].data());
    }
    std::optional<RowPlan> RP = RowPlan::compile(I, Kernels);
    ASSERT_TRUE(RP.has_value());
    std::int64_t Points = 0, RawReads = 0;
    RP->run(TA.data(), Points, RawReads);
    scalarReference(I, Kernels, TB.data());
    EXPECT_EQ(Points, ExpectPoints);
    EXPECT_EQ(RawReads, ExpectReads);
    for (std::size_t S = 0; S < A.size(); ++S)
      for (std::size_t E = 0; E < A[S].size(); ++E)
        EXPECT_EQ(A[S][E], B[S][E]) << "space " << S << " element " << E;
  }
};

Stream directStream(unsigned Space, std::int64_t Base,
                    std::vector<std::int64_t> Strides) {
  Stream S;
  S.Space = Space;
  S.Base = Base;
  S.LevelStrides = std::move(Strides);
  return S;
}

Stream moduloStream(unsigned Space, std::int64_t ModSize, std::int64_t Base,
                    std::vector<std::int64_t> Strides) {
  Stream S = directStream(Space, Base, std::move(Strides));
  S.Modulo = true;
  S.ModSize = ModSize;
  return S;
}

} // namespace

TEST(RowPlanMicro, ModuloReadCrossesWrapSeveralTimesPerRow) {
  // Rows of 17 elements over a 5-element modulo buffer: every row crosses
  // the wrap boundary three or four times, at a row-dependent phase
  // (outer stride 7 is coprime to 5).
  MicroHarness H;
  H.addSpace(6 * 17); // space 0: direct write
  H.addSpace(5);      // space 1: modulo read
  NestInstr I;
  I.Loops = {LoopLevel{"r", 0, 5}, LoopLevel{"x", 0, 16}};
  StmtRecord S;
  S.KernelId = 0;
  S.Write = directStream(0, 0, {17, 1});
  S.Reads = {moduloStream(1, 5, 0, {7, 1})};
  I.Stmts.push_back(S);
  H.check(I, 6 * 17, 6 * 17);
}

TEST(RowPlanMicro, NegativeBaseWrapsFloored) {
  // Pre-wrap indices start negative (base -11) and climb through zero;
  // the floored wrap must agree with the interpreter at every point.
  MicroHarness H;
  H.addSpace(4 * 9);
  H.addSpace(7);
  NestInstr I;
  I.Loops = {LoopLevel{"r", 0, 3}, LoopLevel{"x", 0, 8}};
  StmtRecord S;
  S.KernelId = 0;
  S.Write = directStream(0, 0, {9, 1});
  S.Reads = {moduloStream(1, 7, -11, {3, 1})};
  I.Stmts.push_back(S);
  H.check(I, 4 * 9, 4 * 9);
}

TEST(RowPlanMicro, ModuloWriteCrossesWrap) {
  // The write stream is the modulo one; segments split on its wraps and
  // later writes overwrite earlier ones exactly as the interpreter does.
  MicroHarness H;
  H.addSpace(3);      // space 0: modulo write, ModSize 3
  H.addSpace(2 * 11); // space 1: direct read
  NestInstr I;
  I.Loops = {LoopLevel{"r", 0, 1}, LoopLevel{"x", 0, 10}};
  StmtRecord S;
  S.KernelId = 0;
  S.Write = moduloStream(0, 3, 1, {5, 1});
  S.Reads = {directStream(1, 0, {11, 1})};
  I.Stmts.push_back(S);
  H.check(I, 2 * 11, 2 * 11);
}

TEST(RowPlanMicro, BroadcastStrideZeroRead) {
  // Second operand has inner stride 0: one value broadcast over the row,
  // advanced only by the outer level. Distinct bases keep the pair safe.
  MicroHarness H;
  H.addSpace(5 * 13);
  H.addSpace(5 * 13);
  H.addSpace(8);
  NestInstr I;
  I.Loops = {LoopLevel{"r", 0, 4}, LoopLevel{"x", 0, 12}};
  StmtRecord S;
  S.KernelId = 1;
  S.Write = directStream(0, 0, {13, 1});
  S.Reads = {directStream(1, 0, {13, 1}), directStream(2, 0, {1, 0})};
  I.Stmts.push_back(S);
  H.check(I, 5 * 13, 2 * 5 * 13);
}

TEST(RowPlanMicro, GuardsClampInnerRangeAndAdmitRows) {
  // Statement 1 runs everywhere; statement 2 only on rows 1..2 and inner
  // positions 3..7. Disjoint spaces keep the interleaving trivially safe.
  MicroHarness H;
  H.addSpace(4 * 10);
  H.addSpace(4 * 10);
  H.addSpace(4 * 10);
  H.addSpace(4 * 10);
  NestInstr I;
  I.Loops = {LoopLevel{"r", 0, 3}, LoopLevel{"x", 0, 9}};
  StmtRecord S1;
  S1.KernelId = 0;
  S1.Write = directStream(0, 0, {10, 1});
  S1.Reads = {directStream(1, 0, {10, 1})};
  I.Stmts.push_back(S1);
  StmtRecord S2;
  S2.KernelId = 0;
  S2.Guards = {GuardBound{0, 1, 2}, GuardBound{1, 3, 7}};
  S2.Write = directStream(2, 0, {10, 1});
  S2.Reads = {directStream(3, 0, {10, 1})};
  I.Stmts.push_back(S2);
  H.check(I, 4 * 10 + 2 * 5, 4 * 10 + 2 * 5);
}

TEST(RowPlanMicro, FusedProducerConsumerThroughModuloBufferIsSafe) {
  // The fused-reduced shape: statement 1 writes a ModSize-2 carry buffer,
  // statement 2 reads it at offsets 0 and -1 (bases 0 and -1). The
  // reorder-safety rule (c <= 0, 2|c| <= M) admits it, and segments of
  // length <= the wrap distance keep execution bit-identical.
  MicroHarness H;
  H.addSpace(2);      // space 0: modulo carry buffer
  H.addSpace(3 * 12); // space 1: statement 1 input
  H.addSpace(3 * 12); // space 2: final output
  NestInstr I;
  I.Loops = {LoopLevel{"r", 0, 2}, LoopLevel{"x", 0, 11}};
  StmtRecord P;
  P.KernelId = 0;
  P.Write = moduloStream(0, 2, 0, {0, 1});
  P.Reads = {directStream(1, 0, {12, 1})};
  I.Stmts.push_back(P);
  StmtRecord C;
  C.KernelId = 1;
  C.Guards = {GuardBound{1, 1, 11}};
  C.Write = directStream(2, 0, {12, 1});
  C.Reads = {moduloStream(0, 2, -1, {0, 1}), moduloStream(0, 2, 0, {0, 1})};
  I.Stmts.push_back(C);
  H.check(I, 3 * 12 + 3 * 11, 3 * 12 + 2 * 3 * 11);
}

TEST(RowPlanMicro, ForwardConflictAtDistanceTwoCapsSegments) {
  // Statement 2 reads what statement 1 writes two positions AHEAD
  // (c = +2): the consumer must see the pre-update value, so batching is
  // legal only in segments of at most the collision distance. compile()
  // must cap MaxSegment at 2 and the capped walk must stay bit-identical.
  MicroHarness H;
  H.addSpace(16); // space 0: producer target / consumer source
  H.addSpace(16); // space 1: producer input
  H.addSpace(16); // space 2: consumer output
  NestInstr I;
  I.Loops = {LoopLevel{"x", 0, 11}};
  StmtRecord P;
  P.KernelId = 0;
  P.Write = directStream(0, 0, {1});
  P.Reads = {directStream(1, 0, {1})};
  I.Stmts.push_back(P);
  StmtRecord C;
  C.KernelId = 0;
  C.Write = directStream(2, 0, {1});
  C.Reads = {directStream(0, 2, {1})};
  I.Stmts.push_back(C);
  std::optional<RowPlan> RP = RowPlan::compile(I, H.Kernels);
  ASSERT_TRUE(RP.has_value());
  EXPECT_EQ(RP->MaxSegment, 2);
  H.check(I, 2 * 12, 2 * 12);
}

TEST(RowPlanCompile, RefusesScalarOnlyKernels) {
  codegen::KernelRegistry Kernels;
  int ScalarOnly = Kernels.add(scalarSum);
  NestInstr I;
  I.Loops = {LoopLevel{"x", 0, 7}};
  StmtRecord S;
  S.KernelId = ScalarOnly;
  S.Write = directStream(0, 0, {1});
  S.Reads = {directStream(1, 0, {1})};
  I.Stmts.push_back(S);
  EXPECT_FALSE(RowPlan::compile(I, Kernels).has_value());
}

TEST(RowPlanCompile, RefusesForwardDependentInterleaving) {
  // Statement 2 reads what statement 1 writes one position AHEAD
  // (c = +1, divisible by the stride): batching statement 1 over a
  // segment would let the consumer observe values the interpreter has
  // not produced yet in its order — must fall back to scalar.
  codegen::KernelRegistry Kernels;
  Kernels.add(scalarSum, batchedSum<1>);
  NestInstr I;
  I.Loops = {LoopLevel{"x", 0, 7}};
  StmtRecord P;
  P.KernelId = 0;
  P.Write = directStream(0, 0, {1});
  P.Reads = {directStream(1, 0, {1})};
  I.Stmts.push_back(P);
  StmtRecord C;
  C.KernelId = 0;
  C.Write = directStream(2, 0, {1});
  C.Reads = {directStream(0, 1, {1})};
  I.Stmts.push_back(C);
  EXPECT_FALSE(RowPlan::compile(I, Kernels).has_value());
}

TEST(RowPlanCompile, RefusesExternalAndLooplessInstructions) {
  codegen::KernelRegistry Kernels;
  NestInstr External;
  External.External = [](int) {};
  EXPECT_FALSE(RowPlan::compile(External, Kernels).has_value());
  NestInstr Loopless; // no loop levels, no statements
  EXPECT_FALSE(RowPlan::compile(Loopless, Kernels).has_value());
}

//===----------------------------------------------------------------------===//
// Whole schedules: batched vs scalar through runPlan.
//===----------------------------------------------------------------------===//

namespace {

/// One MiniFluxDiv schedule under test: the (possibly transformed) chain,
/// its kernel registry (registerKernels now installs batched bodies), the
/// storage plan of the schedule, and the parameter binding.
struct Sched {
  ir::LoopChain Chain;
  codegen::KernelRegistry Kernels;
  graph::Graph G;
  ParamEnv Env;

  /// Applies recipe -1 = none, 0 = fuse-among, 1 = fuse-within,
  /// 2 = fuse-all, optionally followed by storage reduction. \p Widen
  /// multiplies the modulo windows of the storage plan (see
  /// StoragePlan::build).
  Sched(ir::LoopChain C, std::int64_t N, int Recipe = -1,
        bool Reduce = false, unsigned Widen = 1)
      : Chain(std::move(C)), G(graph::buildGraph(Chain)), Env{{"N", N}} {
    mfd::registerKernels(Chain, Kernels);
    switch (Recipe) {
    case 0:
      mfd::applyFuseAmongDirections(G);
      break;
    case 1:
      mfd::applyFuseWithinDirections(G);
      break;
    case 2:
      mfd::applyFuseAllLevels(G);
      break;
    default:
      break;
    }
    if (Reduce)
      storage::reduceStorage(G);
    SPlan.emplace(
        storage::StoragePlan::build(G, /*UseAllocation=*/false, Widen));
  }

  std::optional<storage::StoragePlan> SPlan;

  storage::ConcreteStorage freshStore() {
    storage::ConcreteStorage Store(*SPlan, Env);
    for (const std::string &Name : Chain.arrayNames()) {
      if (Chain.array(Name).Kind != ir::StorageKind::PersistentInput)
        continue;
      Chain.array(Name).Extent->forEachPoint(
          Env, [&](const std::vector<std::int64_t> &P) {
            double V = 1.0;
            for (std::size_t D = 0; D < P.size(); ++D)
              V += 0.001 * static_cast<double>((D + 3) * P[D]);
            Store.at(Name, P) = V;
          });
    }
    return Store;
  }

  std::vector<double> outputs(storage::ConcreteStorage &Store) {
    std::vector<double> Out;
    for (const std::string &Name : Chain.arrayNames()) {
      if (Chain.array(Name).Kind != ir::StorageKind::PersistentOutput)
        continue;
      Chain.array(Name).Extent->forEachPoint(
          Env, [&](const std::vector<std::int64_t> &P) {
            Out.push_back(Store.at(Name, P));
          });
    }
    return Out;
  }
};

void expectBitIdentical(const std::vector<double> &Expected,
                        const std::vector<double> &Got) {
  ASSERT_EQ(Expected.size(), Got.size());
  for (std::size_t I = 0; I < Expected.size(); ++I)
    EXPECT_EQ(Expected[I], Got[I]) << "flat index " << I;
}

/// Runs \p Plan twice per thread count — batching off (the scalar oracle)
/// and on — and requires bit-identical persistent outputs plus the same
/// number of executed statement instances.
void checkBatchedMatchesScalar(Sched &S, const ExecutionPlan &Plan) {
  for (int Threads : {1, 2, 4}) {
    RunOptions Off;
    Off.Threads = Threads;
    Off.Batched = false;
    storage::ConcreteStorage RefStore = S.freshStore();
    PlanStats RefStats = runPlan(Plan, S.Kernels, RefStore, Off);
    std::vector<double> Expected = S.outputs(RefStore);

    RunOptions On;
    On.Threads = Threads;
    On.Batched = true;
    storage::ConcreteStorage Store = S.freshStore();
    PlanStats Stats = runPlan(Plan, S.Kernels, Store, On);
    expectBitIdentical(Expected, S.outputs(Store));

    // JIT leg of the same sweep: specialized kernels must stay bitwise on
    // the scalar oracle too. Best-effort by contract — on a machine with
    // no host compiler every statement silently keeps its interpreted
    // body, and the comparison still holds.
    RunOptions Jit = On;
    Jit.Kernels = KernelMode::Jit;
    storage::ConcreteStorage JitStore = S.freshStore();
    runPlan(Plan, S.Kernels, JitStore, Jit);
    expectBitIdentical(Expected, S.outputs(JitStore));

    std::int64_t RefPoints = 0, Points = 0;
    for (const PlanStats::NodeStat &N : RefStats.Nodes)
      RefPoints += N.Points;
    for (const PlanStats::NodeStat &N : Stats.Nodes)
      Points += N.Points;
    EXPECT_EQ(RefPoints, Points) << "threads " << Threads;
  }
}

} // namespace

TEST(RowPlanSchedules, UntiledChain2D) {
  Sched S(mfd::buildChain2D(), 8);
  storage::ConcreteStorage Probe = S.freshStore();
  ExecutionPlan Plan = ExecutionPlan::fromChain(S.Chain, Probe, S.Env, &S.G);
  checkBatchedMatchesScalar(S, Plan);
}

TEST(RowPlanSchedules, UntiledChain3D) {
  Sched S(mfd::buildChain3D(), 4);
  storage::ConcreteStorage Probe = S.freshStore();
  ExecutionPlan Plan = ExecutionPlan::fromChain(S.Chain, Probe, S.Env, &S.G);
  checkBatchedMatchesScalar(S, Plan);
}

using RecipeAndReduce = std::tuple<int, bool>;

class FusedAstSchedule
    : public ::testing::TestWithParam<RecipeAndReduce> {};

TEST_P(FusedAstSchedule, BatchedMatchesScalarBitwise) {
  auto [Recipe, Reduce] = GetParam();
  // The series schedule is the cross-check oracle for the scalar path
  // elsewhere (InterpreterTest); the property under test here is
  // batched == scalar on the same transformed plan.
  Sched S(mfd::buildChain2D(), 7, Recipe, Reduce);
  codegen::AstPtr Ast = codegen::generate(S.G);
  storage::ConcreteStorage Probe = S.freshStore();
  ExecutionPlan Plan = ExecutionPlan::fromAst(S.G, *Ast, Probe, S.Env);
  checkBatchedMatchesScalar(S, Plan);
}

static std::string
fusedAstName(const ::testing::TestParamInfo<RecipeAndReduce> &Info) {
  static const char *Names[] = {"fuseAmong", "fuseWithin", "fuseAll"};
  return std::string(Names[std::get<0>(Info.param)]) +
         (std::get<1>(Info.param) ? "_reduced" : "_sa");
}

INSTANTIATE_TEST_SUITE_P(
    RecipesAndStorage, FusedAstSchedule,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(false, true)),
    fusedAstName);

TEST(RowPlanSchedules, FuseAllReducedWidenedWindows2D) {
  // Widened modulo windows (M >= 2x every producer/consumer lag) lift
  // the per-pair segment caps of the reduced fuse-all schedule; the
  // unbounded batched walk must still match the scalar oracle bitwise.
  Sched S(mfd::buildChain2D(), 9, /*Recipe=*/2, /*Reduce=*/true,
          /*Widen=*/2);
  codegen::AstPtr Ast = codegen::generate(S.G);
  storage::ConcreteStorage Probe = S.freshStore();
  ExecutionPlan Plan = ExecutionPlan::fromAst(S.G, *Ast, Probe, S.Env);
  checkBatchedMatchesScalar(S, Plan);
}

TEST(RowPlanSchedules, FuseAllReducedWidenedWindows3D) {
  // The bench configuration: 3D fuse-all with reduced storage widened 8x.
  Sched S(mfd::buildChain3D(), 5, /*Recipe=*/2, /*Reduce=*/true,
          /*Widen=*/8);
  codegen::AstPtr Ast = codegen::generate(S.G);
  storage::ConcreteStorage Probe = S.freshStore();
  ExecutionPlan Plan = ExecutionPlan::fromAst(S.G, *Ast, Probe, S.Env);
  checkBatchedMatchesScalar(S, Plan);
}

class TiledSchedule : public ::testing::TestWithParam<int> {};

TEST_P(TiledSchedule, BatchedMatchesScalarBitwise2D) {
  int T = GetParam();
  Sched S(mfd::buildChain2D(), 8);
  storage::ConcreteStorage Probe = S.freshStore();
  tiling::ChainTiling Tiling =
      tiling::overlappedTiling(S.Chain, {T, T}, S.Env);
  ExecutionPlan Plan =
      ExecutionPlan::fromTiling(S.Chain, Tiling, Probe, S.Env, &S.G);
  checkBatchedMatchesScalar(S, Plan);
}

INSTANTIATE_TEST_SUITE_P(TileSizes, TiledSchedule,
                         ::testing::Values(2, 3, 4));

TEST(RowPlanSchedules, TiledChain3D) {
  Sched S(mfd::buildChain3D(), 4);
  storage::ConcreteStorage Probe = S.freshStore();
  tiling::ChainTiling Tiling =
      tiling::overlappedTiling(S.Chain, {2, 2, 0}, S.Env);
  ExecutionPlan Plan =
      ExecutionPlan::fromTiling(S.Chain, Tiling, Probe, S.Env, &S.G);
  checkBatchedMatchesScalar(S, Plan);
}

TEST(RowPlanStats, SerializationForStatsIsSurfaced) {
  Sched S(mfd::buildChain2D(), 4);
  storage::ConcreteStorage Probe = S.freshStore();
  ExecutionPlan Plan = ExecutionPlan::fromChain(S.Chain, Probe, S.Env, &S.G);
  RunOptions Opts;
  Opts.Threads = 4;
  Opts.CollectStats = true;
  storage::ConcreteStorage Store = S.freshStore();
  PlanStats Stats = runPlan(Plan, S.Kernels, Store, Opts);
  EXPECT_TRUE(Stats.SerializedForStats);
  EXPECT_EQ(Stats.ThreadsUsed, 1);
  EXPECT_NE(Stats.toString().find("serialized for stats"), std::string::npos);

  // A plain run does not claim serialization.
  storage::ConcreteStorage Store2 = S.freshStore();
  RunOptions Plain;
  Plain.Threads = 2;
  PlanStats PlainStats = runPlan(Plan, S.Kernels, Store2, Plain);
  EXPECT_FALSE(PlainStats.SerializedForStats);
  EXPECT_EQ(PlainStats.toString().find("serialized"), std::string::npos);
}
