//===- tests/exec/FaultInjectorTest.cpp -----------------------------------===//
//
// The deterministic fault injector: spec parsing (with the site/kind
// pairing table), one-shot Nth-occurrence firing, and the two structural
// campaigns — modulo-window corruption on a plan copy and persistent-input
// truncation on concrete storage.
//
//===----------------------------------------------------------------------===//

#include "exec/FaultInjector.h"

#include "codegen/Generator.h"
#include "exec/ExecutionPlan.h"
#include "graph/GraphBuilder.h"
#include "parser/PragmaParser.h"
#include "parser/ScriptRunner.h"
#include "storage/ReuseDistance.h"
#include "storage/StorageMap.h"

#include <gtest/gtest.h>

using namespace lcdfg;
using namespace lcdfg::exec;

namespace {

/// The Figure 1 chain; fused + storage-reduced it compiles to a plan with
/// a rolling (modulo) VAL_1 window, the target of modulo:corrupt.
constexpr const char *Fig1 = R"(
#pragma omplc parallel(fuse)
{
#pragma omplc for domain(0:N, 0:N-1) with (x, y) \
    write VAL_1{(x,y)} read VAL_0{(x,y)}
S1: VAL_1(x,y) = func1(VAL_0(x,y));
#pragma omplc for domain(0:N-1, 0:N-1) with (x, y) \
    write VAL_2{(x,y)} read VAL_1{(x,y),(x+1,y)}
S2: VAL_2(x,y) = func2(VAL_1(x,y), VAL_1(x+1,y));
}
)";

ir::LoopChain parseFig1() {
  parser::ParseResult R = parser::parseLoopChain(Fig1);
  EXPECT_TRUE(static_cast<bool>(R)) << R.Error;
  return std::move(*R.Chain);
}

FaultSpec parseOk(const char *Text) {
  auto S = FaultInjector::parseSpec(Text);
  EXPECT_TRUE(static_cast<bool>(S)) << Text << ": " << S.error().toString();
  return *S;
}

void expectParseError(const char *Text, const char *Needle) {
  auto S = FaultInjector::parseSpec(Text);
  ASSERT_FALSE(static_cast<bool>(S)) << Text << " should not parse";
  EXPECT_EQ(S.error().code(), support::ErrorCode::FaultInjected);
  EXPECT_NE(S.error().message().find(Needle), std::string::npos)
      << S.error().toString();
}

} // namespace

TEST(FaultSpecParse, AcceptsEveryDocumentedPairing) {
  FaultSpec S = parseOk("kernel:throw");
  EXPECT_EQ(S.Site, FaultSite::Kernel);
  EXPECT_EQ(S.Kind, FaultKind::Throw);
  EXPECT_EQ(S.Nth, 1u);

  S = parseOk("task:fail:3");
  EXPECT_EQ(S.Site, FaultSite::Task);
  EXPECT_EQ(S.Kind, FaultKind::Fail);
  EXPECT_EQ(S.Nth, 3u);

  EXPECT_EQ(parseOk("modulo:corrupt").Site, FaultSite::Modulo);
  EXPECT_EQ(parseOk("input:truncate").Kind, FaultKind::Truncate);
  // Whitespace around fields is tolerated (env vars get quoted oddly).
  EXPECT_EQ(parseOk(" kernel : throw : 2 ").Nth, 2u);
}

TEST(FaultSpecParse, RejectsMalformedSpecsWithE012) {
  expectParseError("kernel", "expected <site>:<kind>[:<nth>]");
  expectParseError("a:b:c:d", "expected <site>:<kind>[:<nth>]");
  expectParseError("disk:throw", "unknown site");
  expectParseError("kernel:explode", "unknown kind");
  // Site/kind mispairing: each kind applies to exactly one site.
  expectParseError("kernel:truncate", "does not apply");
  expectParseError("modulo:throw", "does not apply");
  expectParseError("kernel:throw:zero", "not a number");
  expectParseError("kernel:throw:0", "must be >= 1");
}

TEST(FaultSpecParse, AcceptsShardPairings) {
  FaultSpec S = parseOk("peer:kill:2");
  EXPECT_EQ(S.Site, FaultSite::Peer);
  EXPECT_EQ(S.Kind, FaultKind::Kill);
  EXPECT_EQ(S.Nth, 2u);

  EXPECT_EQ(parseOk("msg:drop").Kind, FaultKind::Drop);
  EXPECT_EQ(parseOk("msg:truncate").Site, FaultSite::Msg);
  EXPECT_EQ(parseOk("msg:delay:3").Kind, FaultKind::Delay);

  expectParseError("peer:drop", "does not apply");
  expectParseError("kernel:kill", "does not apply");
  expectParseError("msg:kill", "does not apply");
}

TEST(FaultSpecParse, MultiSpecSplitsOnSemicolons) {
  auto Specs = FaultInjector::parseSpecs("msg:delay;peer:kill:2");
  ASSERT_TRUE(static_cast<bool>(Specs)) << Specs.error().toString();
  ASSERT_EQ(Specs->size(), 2u);
  EXPECT_EQ((*Specs)[0].Site, FaultSite::Msg);
  EXPECT_EQ((*Specs)[0].Kind, FaultKind::Delay);
  EXPECT_EQ((*Specs)[1].Site, FaultSite::Peer);
  EXPECT_EQ((*Specs)[1].Nth, 2u);

  // Empty segments (trailing or doubled separators) are skipped.
  auto Single = FaultInjector::parseSpecs("kernel:throw;");
  ASSERT_TRUE(static_cast<bool>(Single));
  EXPECT_EQ(Single->size(), 1u);

  // One malformed segment fails the whole parse with its structured error.
  auto Bad = FaultInjector::parseSpecs("kernel:throw;disk:throw");
  ASSERT_FALSE(static_cast<bool>(Bad));
  EXPECT_EQ(Bad.error().code(), support::ErrorCode::FaultInjected);
  EXPECT_NE(Bad.error().message().find("unknown site"), std::string::npos);
}

TEST(FaultInjector, MultiSpecCountersAreIndependent) {
  FaultInjector FI;
  FI.arm({FaultSpec{FaultSite::Msg, FaultKind::Delay, 1},
          FaultSpec{FaultSite::Peer, FaultKind::Kill, 2}});
  EXPECT_TRUE(FI.armedFor(FaultSite::Msg));
  EXPECT_TRUE(FI.armedFor(FaultSite::Peer));

  // Firing the msg spec leaves the peer spec armed with its own counter.
  EXPECT_EQ(FI.fire(FaultSite::Msg), FaultKind::Delay);
  EXPECT_FALSE(FI.armedFor(FaultSite::Msg));
  EXPECT_TRUE(FI.armedFor(FaultSite::Peer));
  EXPECT_FALSE(FI.shouldFire(FaultSite::Peer)) << "peer occurrence 1";
  EXPECT_EQ(FI.fire(FaultSite::Peer), FaultKind::Kill) << "peer occurrence 2";
  EXPECT_EQ(FI.firedCount(), 2u);
  EXPECT_EQ(FI.fire(FaultSite::Peer), FaultKind::None) << "one-shot";
}

TEST(FaultInjector, FireReportsTheKind) {
  FaultInjector FI;
  FI.arm(FaultSpec{FaultSite::Msg, FaultKind::Truncate, 1});
  EXPECT_EQ(FI.fire(FaultSite::Peer), FaultKind::None) << "wrong site";
  EXPECT_EQ(FI.fire(FaultSite::Msg), FaultKind::Truncate);
  EXPECT_EQ(FI.fire(FaultSite::Msg), FaultKind::None);
}

TEST(FaultInjector, FiresOnceAtTheNthOccurrence) {
  FaultInjector FI;
  FI.arm(FaultSpec{FaultSite::Kernel, FaultKind::Throw, 3});
  EXPECT_TRUE(FI.armedFor(FaultSite::Kernel));
  EXPECT_FALSE(FI.armedFor(FaultSite::Task));

  EXPECT_FALSE(FI.shouldFire(FaultSite::Task)) << "wrong site never fires";
  EXPECT_FALSE(FI.shouldFire(FaultSite::Kernel)) << "occurrence 1";
  EXPECT_FALSE(FI.shouldFire(FaultSite::Kernel)) << "occurrence 2";
  EXPECT_TRUE(FI.shouldFire(FaultSite::Kernel)) << "occurrence 3 fires";

  // One-shot: the spec disarmed itself, later probes see a healthy system.
  EXPECT_FALSE(FI.shouldFire(FaultSite::Kernel));
  EXPECT_FALSE(FI.armedFor(FaultSite::Kernel));
  EXPECT_EQ(FI.firedCount(), 1u);
}

TEST(FaultInjector, DisarmClearsTheSpec) {
  FaultInjector FI;
  FI.arm(FaultSpec{FaultSite::Input, FaultKind::Truncate, 1});
  EXPECT_TRUE(FI.armedFor(FaultSite::Input));
  FI.disarm();
  EXPECT_FALSE(FI.armedFor(FaultSite::Input));
  EXPECT_FALSE(FI.shouldFire(FaultSite::Input));
  EXPECT_EQ(FI.firedCount(), 0u);
}

TEST(FaultInjector, PlanFaultShrinksOneModuloWindow) {
  ir::LoopChain Chain = parseFig1();
  graph::Graph G = graph::buildGraph(Chain);
  ASSERT_TRUE(static_cast<bool>(parser::runScript(G, "fusepc S1 S2\n")));
  storage::reduceStorage(G);

  exec::ParamEnv Env{{"N", 8}};
  storage::StoragePlan SPlan =
      storage::StoragePlan::build(G, /*UseAllocation=*/true);
  storage::ConcreteStorage Store(SPlan, Env);
  ExecutionPlan Plan = ExecutionPlan::fromChain(Chain, Store, Env);
  // The reduced VAL_1 window only appears on the fused/AST lowering; build
  // that one instead if the chain lowering carries no modulo streams.
  auto CountModulo = [](const ExecutionPlan &P) {
    int Count = 0;
    for (const NestInstr &I : P.Instrs)
      for (const StmtRecord &S : I.Stmts) {
        if (S.Write.Modulo && S.Write.ModSize > 1)
          ++Count;
        for (const Stream &R : S.Reads)
          if (R.Modulo && R.ModSize > 1)
            ++Count;
      }
    return Count;
  };
  if (CountModulo(Plan) == 0) {
    codegen::AstPtr Ast = codegen::generate(G);
    Plan = ExecutionPlan::fromAst(G, *Ast, Store, Env);
  }
  ASSERT_GT(CountModulo(Plan), 0) << "expected a rolling VAL_1 window";

  ExecutionPlan Copy = Plan;
  FaultInjector FI;
  FI.arm(FaultSpec{FaultSite::Modulo, FaultKind::Corrupt, 1});
  ASSERT_TRUE(FI.applyPlanFault(Copy));
  EXPECT_EQ(FI.firedCount(), 1u);

  // Exactly one window shrank, by exactly one element.
  int Shrunk = 0;
  auto Compare = [&](const Stream &Before, const Stream &After) {
    if (Before.ModSize == After.ModSize + 1)
      ++Shrunk;
    else
      EXPECT_EQ(Before.ModSize, After.ModSize);
  };
  for (std::size_t I = 0; I < Plan.Instrs.size(); ++I)
    for (std::size_t S = 0; S < Plan.Instrs[I].Stmts.size(); ++S) {
      Compare(Plan.Instrs[I].Stmts[S].Write, Copy.Instrs[I].Stmts[S].Write);
      for (std::size_t R = 0; R < Plan.Instrs[I].Stmts[S].Reads.size(); ++R)
        Compare(Plan.Instrs[I].Stmts[S].Reads[R],
                Copy.Instrs[I].Stmts[S].Reads[R]);
    }
  EXPECT_EQ(Shrunk, 1);

  // Disarmed after firing: a second application is a no-op.
  EXPECT_FALSE(FI.applyPlanFault(Copy));
}

TEST(FaultInjector, StorageFaultHalvesOnePersistentSpace) {
  ir::LoopChain Chain = parseFig1();
  graph::Graph G = graph::buildGraph(Chain);
  exec::ParamEnv Env{{"N", 8}};
  storage::StoragePlan SPlan =
      storage::StoragePlan::build(G, /*UseAllocation=*/false);
  storage::ConcreteStorage Store(SPlan, Env);
  ExecutionPlan Plan = ExecutionPlan::fromChain(Chain, Store, Env);

  std::vector<std::size_t> Before;
  for (std::size_t S = 0; S < Store.numSpaces(); ++S)
    Before.push_back(Store.space(S).size());

  FaultInjector FI;
  FI.arm(FaultSpec{FaultSite::Input, FaultKind::Truncate, 1});
  ASSERT_TRUE(FI.applyStorageFault(Plan, Store));

  int Halved = 0;
  for (std::size_t S = 0; S < Store.numSpaces(); ++S) {
    if (Store.space(S).size() == Before[S] / 2 &&
        Store.space(S).size() < Before[S]) {
      EXPECT_TRUE(Plan.SpacePersistent[S])
          << "only persistent spaces are truncated";
      ++Halved;
    } else {
      EXPECT_EQ(Store.space(S).size(), Before[S]);
    }
  }
  EXPECT_EQ(Halved, 1);
  EXPECT_FALSE(FI.applyStorageFault(Plan, Store)) << "one-shot";
}

TEST(FaultInjector, StorageFaultNthSelectsLaterSpace) {
  // Each eligible persistent space is one occurrence of the input site:
  // input:truncate:2 must keep scanning past the first eligible space and
  // halve the second, not silently fizzle.
  ir::LoopChain Chain = parseFig1();
  graph::Graph G = graph::buildGraph(Chain);
  exec::ParamEnv Env{{"N", 8}};
  storage::StoragePlan SPlan =
      storage::StoragePlan::build(G, /*UseAllocation=*/false);
  storage::ConcreteStorage Store(SPlan, Env);
  ExecutionPlan Plan = ExecutionPlan::fromChain(Chain, Store, Env);

  std::vector<std::size_t> Eligible;
  for (std::size_t S = 0; S < Store.numSpaces(); ++S)
    if (Plan.SpacePersistent[S] && Store.space(S).size() > 1)
      Eligible.push_back(S);
  ASSERT_GE(Eligible.size(), 2u) << "fig1 should carry VAL_0 and VAL_2";

  std::vector<std::size_t> Before;
  for (std::size_t S = 0; S < Store.numSpaces(); ++S)
    Before.push_back(Store.space(S).size());

  FaultInjector FI;
  FI.arm(FaultSpec{FaultSite::Input, FaultKind::Truncate, 2});
  ASSERT_TRUE(FI.applyStorageFault(Plan, Store));
  EXPECT_EQ(FI.firedCount(), 1u);
  for (std::size_t S = 0; S < Store.numSpaces(); ++S) {
    if (S == Eligible[1])
      EXPECT_EQ(Store.space(S).size(), Before[S] / 2);
    else
      EXPECT_EQ(Store.space(S).size(), Before[S]);
  }
}
