//===- tests/exec/ListSchedulerTest.cpp -----------------------------------===//
//
// The work-stealing list scheduler: dependence safety under steal storms,
// bit-identity against the wavefront barrier and the scalar-serial oracle,
// exception drain-and-rethrow (including injected task faults), the
// live-temporary budget (admission deferral, peak-live cap, E016 refusal
// up front and at a wedge), and the memoized wavefront/height queries.
//
//===----------------------------------------------------------------------===//

#include "exec/TaskGraph.h"

#include "exec/FaultInjector.h"
#include "exec/PlanRunner.h"
#include "exec/ThreadPool.h"
#include "graph/GraphBuilder.h"
#include "minifluxdiv/Spec.h"
#include "obs/Trace.h"
#include "storage/LivenessAllocator.h"
#include "support/Status.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

using namespace lcdfg;
using namespace lcdfg::exec;
using storage::FootprintTracker;

namespace {

/// Drains (and disables) the global tracer, returning the trace.
obs::Trace drainTrace() {
  obs::Trace T = obs::Tracer::global().drain();
  obs::Tracer::global().disable();
  return T;
}

/// Pins LCDFG_SCHED for one test. The CI scheduler matrix exports it to
/// force a strategy suite-wide; tests that assert strategy-specific
/// budget behavior must not have their explicit RunOptions overridden.
struct ScopedSched {
  std::string Saved;
  bool Had;
  explicit ScopedSched(const char *Kind) {
    const char *Old = std::getenv("LCDFG_SCHED");
    Had = Old != nullptr;
    if (Old)
      Saved = Old;
    setenv("LCDFG_SCHED", Kind, 1);
  }
  ~ScopedSched() {
    if (Had)
      setenv("LCDFG_SCHED", Saved.c_str(), 1);
    else
      unsetenv("LCDFG_SCHED");
  }
};

/// MiniFluxDiv harness for plan-level scheduler comparisons (same shape
/// as the Recovery suite: seeded inputs, outputs in extent order).
struct Harness {
  ir::LoopChain Chain;
  codegen::KernelRegistry Kernels;
  graph::Graph G;
  storage::StoragePlan Plan;
  ParamEnv Env;

  explicit Harness(ir::LoopChain C, std::int64_t N)
      : Chain(std::move(C)), G(graph::buildGraph(Chain)),
        Plan(storage::StoragePlan::build(G, /*UseAllocation=*/false)),
        Env{{"N", N}} {
    mfd::registerKernels(Chain, Kernels);
  }

  storage::ConcreteStorage freshStore() {
    storage::ConcreteStorage Store(Plan, Env);
    for (const std::string &Name : Chain.arrayNames()) {
      if (Chain.array(Name).Kind != ir::StorageKind::PersistentInput)
        continue;
      Chain.array(Name).Extent->forEachPoint(
          Env, [&](const std::vector<std::int64_t> &P) {
            double V = 1.0;
            for (std::size_t D = 0; D < P.size(); ++D)
              V += 0.001 * static_cast<double>((D + 3) * P[D]);
            Store.at(Name, P) = V;
          });
    }
    return Store;
  }

  std::vector<double> outputs(storage::ConcreteStorage &Store) {
    std::vector<double> Out;
    for (const std::string &Name : Chain.arrayNames()) {
      if (Chain.array(Name).Kind != ir::StorageKind::PersistentOutput)
        continue;
      Chain.array(Name).Extent->forEachPoint(
          Env, [&](const std::vector<std::int64_t> &P) {
            Out.push_back(Store.at(Name, P));
          });
    }
    return Out;
  }
};

void expectBitIdentical(const std::vector<double> &Expected,
                        const std::vector<double> &Got) {
  ASSERT_EQ(Expected.size(), Got.size());
  for (std::size_t I = 0; I < Expected.size(); ++I)
    EXPECT_EQ(Expected[I], Got[I]) << "flat index " << I;
}

} // namespace

TEST(ListScheduler, RunsEveryTaskOnceRespectingDependences) {
  // A layered DAG: 4 diamonds in sequence, each fanning out to 8 middles.
  TaskGraph TG;
  std::mutex Mu;
  std::vector<int> Done(4 * 10, 0);
  std::vector<int> Order;
  auto Mark = [&](int Id) {
    std::lock_guard<std::mutex> Lock(Mu);
    ++Done[static_cast<std::size_t>(Id)];
    Order.push_back(Id);
  };
  // Work receives the participant id, so bind each task's own id here.
  auto Add = [&] { return TG.addTask([&Mark, Id = TG.size()](int) { Mark(Id); }); };
  int Prev = -1;
  for (int D = 0; D < 4; ++D) {
    int Top = Add();
    if (Prev >= 0)
      TG.addDependence(Prev, Top);
    std::vector<int> Mids;
    for (int M = 0; M < 8; ++M) {
      int Mid = Add();
      TG.addDependence(Top, Mid);
      Mids.push_back(Mid);
    }
    int Bottom = Add();
    for (int Mid : Mids)
      TG.addDependence(Mid, Bottom);
    Prev = Bottom;
  }

  TaskGraph::ListOptions Opts;
  Opts.Threads = 4;
  TG.runList(Opts);

  for (std::size_t I = 0; I < Done.size(); ++I)
    EXPECT_EQ(Done[I], 1) << "task " << I;
  // Every diamond's top precedes its middles, middles precede the bottom.
  std::vector<int> Position(Done.size());
  for (std::size_t P = 0; P < Order.size(); ++P)
    Position[static_cast<std::size_t>(Order[P])] = static_cast<int>(P);
  for (int D = 0; D < 4; ++D) {
    int Top = D * 10, Bottom = D * 10 + 9;
    for (int M = 1; M <= 8; ++M) {
      EXPECT_LT(Position[Top], Position[Top + M]);
      EXPECT_LT(Position[Top + M], Position[Bottom]);
    }
  }
}

TEST(ListScheduler, StealStormBalancesSkewedQueues) {
  // All tasks are independent, so the initial deal spreads them over four
  // queues — but the tasks dealt to queue 0 are slow, so the other
  // participants run dry and must steal to finish. With tracing armed the
  // scheduler publishes its steal count.
  obs::Tracer::global().enable();
  TaskGraph TG;
  std::atomic<int> Ran{0};
  for (int T = 0; T < 32; ++T)
    TG.addTask([&Ran, T](int) {
      if (T % 4 == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      ++Ran;
    });
  TaskGraph::ListOptions Opts;
  Opts.Threads = 4;
  TG.runList(Opts);
  obs::Trace Trace = drainTrace();

  EXPECT_EQ(Ran.load(), 32);
  if (ThreadPool::effectiveThreads(4) >= 2) {
    EXPECT_GT(Trace.counter(obs::Counter::SchedSteals), 0);
  }
}

TEST(ListScheduler, ExceptionDrainsInFlightAndPropagates) {
  TaskGraph TG;
  std::atomic<int> Ran{0};
  std::atomic<bool> SlowStarted{false};
  std::atomic<bool> SlowFinished{false};
  TG.addTask([&](int) {
    SlowStarted = true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    SlowFinished = true;
    ++Ran;
  });
  // The thrower waits until the slow task is genuinely in flight; otherwise
  // the failure flag could keep the slow task from ever being admitted and
  // the drain guarantee would not apply to it. With one effective thread the
  // slow task (dealt first) deterministically completes before the thrower.
  TG.addTask([&](int) {
    if (ThreadPool::effectiveThreads(4) >= 2)
      while (!SlowStarted.load())
        std::this_thread::yield();
    throw std::runtime_error("boom");
  });
  for (int T = 0; T < 8; ++T)
    TG.addTask([&Ran](int) { ++Ran; });

  TaskGraph::ListOptions Opts;
  Opts.Threads = 4;
  EXPECT_THROW(TG.runList(Opts), std::runtime_error);
  // Whatever was in flight when the failure hit has drained by the time
  // runList rethrows — no task is still touching shared state.
  if (ThreadPool::effectiveThreads(4) >= 2) {
    EXPECT_TRUE(SlowFinished.load());
  }

  // The pool survives for the next region.
  TaskGraph Clean;
  std::atomic<int> CleanRan{0};
  for (int T = 0; T < 4; ++T)
    Clean.addTask([&CleanRan](int) { ++CleanRan; });
  TaskGraph::ListOptions CleanOpts;
  CleanOpts.Threads = 4;
  Clean.runList(CleanOpts);
  EXPECT_EQ(CleanRan.load(), 4);
}

TEST(ListScheduler, StatusErrorCrossesWorkerBoundaryIntact) {
  TaskGraph TG;
  TG.addTask([](int) {
    support::raise(support::ErrorCode::Internal, "typed failure");
  });
  TaskGraph::ListOptions Opts;
  Opts.Threads = 2;
  try {
    TG.runList(Opts);
    FAIL() << "expected StatusError";
  } catch (const support::StatusError &E) {
    EXPECT_EQ(E.status().code(), support::ErrorCode::Internal);
    EXPECT_NE(E.status().toString().find("typed failure"), std::string::npos);
  }
}

TEST(ListScheduler, MatchesWavefrontAndSerialBitIdentical) {
  Harness S(mfd::buildChain2D(), 8);

  // Scalar-serial oracle.
  storage::ConcreteStorage Ref = S.freshStore();
  ExecutionPlan Plan = ExecutionPlan::fromChain(S.Chain, Ref, S.Env);
  RunOptions Serial;
  Serial.Threads = 1;
  runPlan(Plan, S.Kernels, Ref, Serial);
  std::vector<double> Expected = S.outputs(Ref);

  for (SchedulerKind Sched :
       {SchedulerKind::Wavefront, SchedulerKind::List}) {
    for (int Threads : {2, 4}) {
      storage::ConcreteStorage Store = S.freshStore();
      RunOptions Opts;
      Opts.Threads = Threads;
      Opts.Scheduler = Sched;
      runPlan(Plan, S.Kernels, Store, Opts);
      expectBitIdentical(Expected, S.outputs(Store));
    }
  }
}

TEST(ListScheduler, InjectedTaskFailurePropagatesStructuredError) {
  Harness S(mfd::buildChain2D(), 8);
  storage::ConcreteStorage Store = S.freshStore();
  ExecutionPlan Plan = ExecutionPlan::fromChain(S.Chain, Store, S.Env);

  FaultInjector::global().arm(
      FaultSpec{FaultSite::Task, FaultKind::Fail, 1});
  RunOptions Opts;
  Opts.Threads = 2;
  Opts.Scheduler = SchedulerKind::List;
  try {
    runPlan(Plan, S.Kernels, Store, Opts);
    FaultInjector::global().disarm();
    FAIL() << "expected injected task failure";
  } catch (const support::StatusError &E) {
    FaultInjector::global().disarm();
    EXPECT_EQ(E.status().code(), support::ErrorCode::FaultInjected)
        << E.status().toString();
  }
}

TEST(ListScheduler, BudgetDefersTasksAndCapsPeakLive) {
  // Eight independent tasks, each touching its own 1024-byte space; a
  // 2048-byte budget admits at most two at a time regardless of how many
  // workers are hungry.
  std::vector<FootprintTracker::SpaceInfo> Spaces(
      8, FootprintTracker::SpaceInfo{1024, false});
  std::vector<std::vector<unsigned>> Touch;
  for (unsigned T = 0; T < 8; ++T)
    Touch.push_back({T});
  FootprintTracker Tracker(Spaces, Touch);
  EXPECT_EQ(Tracker.maxSingleTaskBytes(), 1024);
  EXPECT_EQ(Tracker.serialHighWater(), 1024);

  obs::Tracer::global().enable();
  TaskGraph TG;
  std::atomic<int> Ran{0};
  for (int T = 0; T < 8; ++T)
    TG.addTask([&Ran](int) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ++Ran;
    });
  TaskGraph::ListOptions Opts;
  Opts.Threads = 4;
  Opts.MemBudget = 2048;
  Opts.Memory = &Tracker;
  TG.runList(Opts);
  obs::Trace Trace = drainTrace();

  EXPECT_EQ(Ran.load(), 8);
  EXPECT_LE(Tracker.highWater(), 2048);
  EXPECT_GT(Tracker.highWater(), 0);
  EXPECT_EQ(Tracker.liveBytes(), 0);
  EXPECT_EQ(Trace.counter(obs::Counter::SchedPeakLive),
            Tracker.highWater());
}

TEST(ListScheduler, InfeasibleBudgetRefusedUpFrontWithE016) {
  std::vector<FootprintTracker::SpaceInfo> Spaces{{4096, false}};
  std::vector<std::vector<unsigned>> Touch{{0u}};
  FootprintTracker Tracker(Spaces, Touch);

  TaskGraph TG;
  std::atomic<int> Ran{0};
  TG.addTask([&Ran](int) { ++Ran; });
  TaskGraph::ListOptions Opts;
  Opts.Threads = 2;
  Opts.MemBudget = 1024;
  Opts.Memory = &Tracker;
  try {
    TG.runList(Opts);
    FAIL() << "expected E016";
  } catch (const support::StatusError &E) {
    EXPECT_EQ(E.status().code(), support::ErrorCode::MemBudgetInfeasible);
  }
  // Refused before anything started: no task ran, nothing was admitted.
  EXPECT_EQ(Ran.load(), 0);
  EXPECT_EQ(Tracker.highWater(), 0);
}

TEST(ListScheduler, WedgeWithOnlyDeferredTasksRaisesE016) {
  // Space A (1000 bytes) is shared by tasks 0 and 2, so it stays live
  // after task 0 retires. Task 1 touches B (600 bytes) and gates task 2.
  // Budget 1200: every task fits from a cold start, but B can never be
  // activated while A is held — once the dummy chain drains, nothing is
  // ready, running, or admissible, and the scheduler must refuse with
  // E016 instead of hanging.
  std::vector<FootprintTracker::SpaceInfo> Spaces{{1000, false},
                                                  {600, false}};
  std::vector<std::vector<unsigned>> Touch{
      {0u}, {1u}, {0u}, {}, {}};
  FootprintTracker Tracker(Spaces, Touch);
  EXPECT_LE(Tracker.maxSingleTaskBytes(), 1200);

  TaskGraph TG;
  std::atomic<bool> GatedRan{false};
  int A1 = TG.addTask([](int) {});
  int B = TG.addTask([](int) {});
  int A2 = TG.addTask([&GatedRan](int) { GatedRan = true; });
  int D1 = TG.addTask([](int) {});
  int D2 = TG.addTask([](int) {});
  TG.addDependence(B, A2);
  // Height-3 chain under the first A toucher so it outranks B's chain.
  TG.addDependence(A1, D1);
  TG.addDependence(D1, D2);

  TaskGraph::ListOptions Opts;
  Opts.Threads = 1; // Deterministic pop order: A1, then B defers.
  Opts.MemBudget = 1200;
  Opts.Memory = &Tracker;
  try {
    TG.runList(Opts);
    FAIL() << "expected E016 wedge";
  } catch (const support::StatusError &E) {
    EXPECT_EQ(E.status().code(), support::ErrorCode::MemBudgetInfeasible);
    EXPECT_NE(E.status().toString().find("wedged"), std::string::npos)
        << E.status().toString();
  }
  EXPECT_FALSE(GatedRan.load());
}

TEST(ListScheduler, BudgetRefusedOutsideTheListUntiledPath) {
  if (ThreadPool::effectiveThreads(2) < 2)
    GTEST_SKIP() << "serial runs waive the budget by design (L007 rung)";
  ScopedSched Pin("wavefront");
  Harness S(mfd::buildChain2D(), 8);
  storage::ConcreteStorage Store = S.freshStore();
  ExecutionPlan Plan = ExecutionPlan::fromChain(S.Chain, Store, S.Env);

  // The wavefront strategy has no admission step: a nonzero budget is an
  // error, not a silently unenforced knob.
  RunOptions Opts;
  Opts.Threads = 2;
  Opts.Scheduler = SchedulerKind::Wavefront;
  Opts.MemBudget = 1 << 20;
  try {
    runPlan(Plan, S.Kernels, Store, Opts);
    FAIL() << "expected E016";
  } catch (const support::StatusError &E) {
    EXPECT_EQ(E.status().code(), support::ErrorCode::MemBudgetInfeasible);
  }
}

TEST(ListScheduler, GenerousBudgetMatchesOracleAndRecordsPeak) {
  ScopedSched Pin("list");
  Harness S(mfd::buildChain2D(), 8);

  storage::ConcreteStorage Ref = S.freshStore();
  ExecutionPlan Plan = ExecutionPlan::fromChain(S.Chain, Ref, S.Env);
  RunOptions Serial;
  Serial.Threads = 1;
  runPlan(Plan, S.Kernels, Ref, Serial);
  std::vector<double> Expected = S.outputs(Ref);

  obs::Tracer::global().enable();
  storage::ConcreteStorage Store = S.freshStore();
  RunOptions Opts;
  Opts.Threads = 4;
  Opts.Scheduler = SchedulerKind::List;
  Opts.MemBudget = 1 << 30;
  runPlan(Plan, S.Kernels, Store, Opts);
  obs::Trace Trace = drainTrace();

  expectBitIdentical(Expected, S.outputs(Store));
  const std::int64_t Peak = Trace.counter(obs::Counter::SchedPeakLive);
  EXPECT_GE(Peak, 0);
  EXPECT_LE(Peak, 1 << 30);
}

TEST(TaskGraph, WavefrontsAndHeightsAreMemoized) {
  TaskGraph TG;
  int A = TG.addTask([](int) {});
  int B = TG.addTask([](int) {});
  TG.addDependence(A, B);

  const auto &L1 = TG.wavefronts();
  ASSERT_EQ(L1.size(), 2u);
  // Second query without mutation returns the cached object.
  EXPECT_EQ(&TG.wavefronts(), &L1);
  const auto &H1 = TG.heights();
  EXPECT_EQ(H1[static_cast<std::size_t>(A)], 2);
  EXPECT_EQ(H1[static_cast<std::size_t>(B)], 1);

  // Mutation invalidates: a new sink under B deepens the graph.
  int C = TG.addTask([](int) {});
  TG.addDependence(B, C);
  ASSERT_EQ(TG.wavefronts().size(), 3u);
  EXPECT_EQ(TG.heights()[static_cast<std::size_t>(A)], 3);
}
