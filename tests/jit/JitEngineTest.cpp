//===- tests/jit/JitEngineTest.cpp ----------------------------------------===//
//
// The host-compiler kernel backend. Compiled segment kernels must be
// bitwise interchangeable with KernelExpr::eval, the two-level cache must
// serve repeats without recompiling (and recover from a corrupted object
// by rebuilding it), and every failure mode — dead compiler, disabled
// engine — must surface as E017 and descend the recovery ladder with
// L008 while staying bit-identical to the interpreted run.
//
// Every compiling test skips cleanly on a machine without a working host
// compiler; the failure-path tests run everywhere.
//
//===----------------------------------------------------------------------===//

#include "jit/JitEngine.h"

#include "codegen/KernelExpr.h"
#include "exec/Recovery.h"
#include "graph/GraphBuilder.h"
#include "minifluxdiv/Spec.h"
#include "storage/StorageMap.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

using namespace lcdfg;
using namespace lcdfg::jit;

namespace fs = std::filesystem;

namespace {

/// A fresh cache directory per test, rooted under gtest's temp dir so
/// parallel test binaries never share state.
std::string freshCacheDir(const std::string &Name) {
  std::string Dir = ::testing::TempDir() + "lcdfg-jit-test-" + Name + "-" +
                    std::to_string(::getpid());
  fs::remove_all(Dir);
  return Dir;
}

EngineOptions optsFor(const std::string &Dir) {
  EngineOptions O;
  O.CacheDir = Dir;
  return O;
}

/// The reference stencil used across the cache tests:
///   W[i] = W[i] + 0.5 * (R1[2i] - R0[i])
codegen::KernelExpr stencilExpr() {
  using codegen::current;
  using codegen::lit;
  using codegen::read;
  return current() + lit(0.5) * (read(1) - read(0));
}

codegen::SegmentKernelSig stencilSig() {
  codegen::SegmentKernelSig Sig;
  Sig.WriteStride = 1;
  Sig.ReadStrides = {1, 2};
  Sig.ReadAliasesWrite = {false, false};
  return Sig;
}

/// Runs \p K over N points and bit-compares against KernelExpr::eval on
/// the same inputs.
void expectKernelMatchesEval(codegen::BatchedKernel K,
                             const codegen::KernelExpr &E,
                             const codegen::SegmentKernelSig &Sig,
                             std::int64_t N) {
  std::vector<double> W(static_cast<std::size_t>(N * Sig.WriteStride), 0.0);
  std::vector<std::vector<double>> Reads;
  for (std::size_t J = 0; J < Sig.ReadStrides.size(); ++J) {
    std::vector<double> R(static_cast<std::size_t>(N * Sig.ReadStrides[J]));
    for (std::size_t I = 0; I < R.size(); ++I)
      R[I] = 0.25 + 0.001 * static_cast<double>((J + 2) * (I + 1));
    Reads.push_back(std::move(R));
  }
  for (std::size_t I = 0; I < W.size(); ++I)
    W[I] = 1.0 + 0.01 * static_cast<double>(I);

  std::vector<double> Expected = W;
  for (std::int64_t I = 0; I < N; ++I) {
    std::vector<double> Vals;
    for (std::size_t J = 0; J < Reads.size(); ++J)
      Vals.push_back(Reads[J][static_cast<std::size_t>(I * Sig.ReadStrides[J])]);
    std::size_t WI = static_cast<std::size_t>(I * Sig.WriteStride);
    Expected[WI] = E.eval(Vals, Expected[WI]);
  }

  std::vector<const double *> Ptrs;
  for (const std::vector<double> &R : Reads)
    Ptrs.push_back(R.data());
  K(W.data(), Ptrs.data(), Sig.ReadStrides.data(), Sig.WriteStride, N);

  ASSERT_EQ(Expected.size(), W.size());
  for (std::size_t I = 0; I < W.size(); ++I)
    EXPECT_EQ(Expected[I], W[I]) << "flat index " << I;
}

/// Locates the single cached object file for a one-kernel engine run.
std::string onlyObjectIn(const std::string &Dir) {
  std::string Found;
  for (const fs::directory_entry &E : fs::directory_iterator(Dir)) {
    if (E.path().extension() != ".so")
      continue;
    EXPECT_TRUE(Found.empty()) << "more than one cached object in " << Dir;
    Found = E.path().string();
  }
  EXPECT_FALSE(Found.empty()) << "no cached object in " << Dir;
  return Found;
}

} // namespace

TEST(JitEngine, CompiledKernelIsBitIdenticalToEval) {
  Engine Eng(optsFor(freshCacheDir("eval")));
  if (!Eng.available())
    GTEST_SKIP() << "no host compiler: " << Eng.unavailableReason();

  codegen::KernelExpr E = stencilExpr();
  codegen::SegmentKernelSig Sig = stencilSig();
  auto K = Eng.kernel(E, Sig);
  ASSERT_TRUE(K) << K.error().toString();
  expectKernelMatchesEval(*K, E, Sig, 33);
  EXPECT_EQ(1, Eng.stats().Compiled);
  EXPECT_EQ(0, Eng.stats().Failures);
}

TEST(JitEngine, AliasedReadStreamStillExact) {
  // A read stream that aliases the write drops restrict and the simd
  // pragma — the ascending-order contract must still hold bitwise.
  Engine Eng(optsFor(freshCacheDir("alias")));
  if (!Eng.available())
    GTEST_SKIP() << "no host compiler: " << Eng.unavailableReason();

  using codegen::current;
  using codegen::lit;
  using codegen::read;
  codegen::KernelExpr E = current() + lit(0.5) * (read(1) - read(0));
  codegen::SegmentKernelSig Sig;
  Sig.WriteStride = 1;
  Sig.ReadStrides = {1, 1};
  Sig.ReadAliasesWrite = {true, false};
  auto K = Eng.kernel(E, Sig);
  ASSERT_TRUE(K) << K.error().toString();

  // The aliased read trails the write cursor by one element inside the
  // same buffer (the self-referencing stencil shape RowPlan produces):
  // with the ABI's ascending-order contract, lane I reads the value lane
  // I-1 just wrote, so any illegal vectorization shows up bitwise.
  const std::int64_t N = 24;
  std::vector<double> Buf(static_cast<std::size_t>(N) + 1);
  std::vector<double> R1(static_cast<std::size_t>(N));
  for (std::size_t I = 0; I < Buf.size(); ++I)
    Buf[I] = 1.0 + 0.01 * static_cast<double>(I);
  for (std::size_t I = 0; I < R1.size(); ++I)
    R1[I] = 0.25 + 0.002 * static_cast<double>(I);

  std::vector<double> Expected = Buf;
  for (std::int64_t I = 0; I < N; ++I) {
    std::size_t S = static_cast<std::size_t>(I) + 1;
    Expected[S] =
        E.eval({Expected[S - 1], R1[static_cast<std::size_t>(I)]}, Expected[S]);
  }

  std::vector<const double *> Ptrs = {Buf.data(), R1.data()};
  std::vector<std::int64_t> Strides = {1, 1};
  (*K)(Buf.data() + 1, Ptrs.data(), Strides.data(), 1, N);
  for (std::size_t I = 0; I < Buf.size(); ++I)
    EXPECT_EQ(Expected[I], Buf[I]) << "flat index " << I;
}

TEST(JitEngine, FusedRowWalkerMatchesEvalAndCountsChunks) {
  // The fused row kernel is the segment walker with constants baked in:
  // over a modulo read window it must chunk at wrap boundaries (and at
  // MaxSegment), produce values bit-identical to the scalar eval order,
  // and report the same segment/wrap tallies the interpreter would.
  Engine Eng(optsFor(freshCacheDir("row")));
  if (!Eng.available())
    GTEST_SKIP() << "no host compiler: " << Eng.unavailableReason();

  using codegen::current;
  using codegen::read;
  codegen::KernelExpr E = current() + read(0);

  // One statement over x = 0..9: W[x] += Win[(2 + x) mod 4].
  codegen::RowKernelDesc Desc;
  codegen::RowKernelDesc::Stmt St;
  St.Body = &E;
  St.Lo = 0;
  St.Hi = 9;
  St.Write = {/*Space=*/0, /*Modulo=*/false, /*ModSize=*/1,
              /*InnerStride=*/1, /*Flat=*/0, /*AliasesWrite=*/false};
  St.Reads = {{/*Space=*/1, /*Modulo=*/true, /*ModSize=*/4,
               /*InnerStride=*/1, /*Flat=*/1, /*AliasesWrite=*/false}};
  Desc.Stmts.push_back(St);

  auto RK = Eng.rowKernel(Desc);
  ASSERT_TRUE(RK) << RK.error().toString();

  std::vector<double> Out(10), Win = {10.0, 20.0, 30.0, 40.0};
  for (std::size_t I = 0; I < Out.size(); ++I)
    Out[I] = 0.125 * static_cast<double>(I);
  std::vector<double> Expected = Out;
  for (std::size_t X = 0; X < Expected.size(); ++X)
    Expected[X] = E.eval({Win[(2 + X) % 4]}, Expected[X]);

  double *Spaces[2] = {Out.data(), Win.data()};
  std::int64_t Base[2] = {0, 2}; // Pre-wrap bases: write at 0, read at 2.
  std::int64_t Ctrs[2] = {0, 0};
  (*RK)(Spaces, Base, /*Admit=*/1, /*RowLo=*/0, /*RowHi=*/9, Ctrs);
  for (std::size_t I = 0; I < Out.size(); ++I)
    EXPECT_EQ(Expected[I], Out[I]) << "flat index " << I;
  // Wrap countdown from phase 2 of a size-4 window: chunks 2, 4, 4 —
  // each ending exactly on a wrap boundary.
  EXPECT_EQ(3, Ctrs[0]);
  EXPECT_EQ(3, Ctrs[1]);

  // The same row under a conflict cap of 3 splits into more chunks but
  // must not change a single bit. A distinct desc compiles separately.
  Desc.MaxSegment = 3;
  auto Capped = Eng.rowKernel(Desc);
  ASSERT_TRUE(Capped) << Capped.error().toString();
  EXPECT_NE(*RK, *Capped);
  std::vector<double> Out2(10);
  for (std::size_t I = 0; I < Out2.size(); ++I)
    Out2[I] = 0.125 * static_cast<double>(I);
  Spaces[0] = Out2.data();
  std::int64_t Ctrs2[2] = {0, 0};
  (*Capped)(Spaces, Base, 1, 0, 9, Ctrs2);
  for (std::size_t I = 0; I < Out2.size(); ++I)
    EXPECT_EQ(Expected[I], Out2[I]) << "flat index " << I;
  EXPECT_GT(Ctrs2[0], Ctrs[0]);
  EXPECT_EQ(3, Ctrs2[1]);

  // An unadmitted statement must leave memory and counters untouched.
  std::vector<double> Out3(10, 7.0);
  Spaces[0] = Out3.data();
  std::int64_t Ctrs3[2] = {0, 0};
  (*RK)(Spaces, Base, /*Admit=*/0, 0, 9, Ctrs3);
  for (std::size_t I = 0; I < Out3.size(); ++I)
    EXPECT_EQ(7.0, Out3[I]);
  EXPECT_EQ(0, Ctrs3[0]);
  EXPECT_EQ(0, Ctrs3[1]);
}

TEST(JitEngine, SecondRequestHitsInMemoryCache) {
  Engine Eng(optsFor(freshCacheDir("mem")));
  if (!Eng.available())
    GTEST_SKIP() << "no host compiler: " << Eng.unavailableReason();

  codegen::KernelExpr E = stencilExpr();
  codegen::SegmentKernelSig Sig = stencilSig();
  auto K1 = Eng.kernel(E, Sig);
  ASSERT_TRUE(K1) << K1.error().toString();
  auto K2 = Eng.kernel(E, Sig);
  ASSERT_TRUE(K2) << K2.error().toString();
  EXPECT_EQ(*K1, *K2);
  EXPECT_EQ(1, Eng.stats().Compiled);
  EXPECT_EQ(1, Eng.stats().CacheHits);
}

TEST(JitEngine, DiskCacheServesSecondEngineWithoutCompiling) {
  const std::string Dir = freshCacheDir("disk");
  codegen::KernelExpr E = stencilExpr();
  codegen::SegmentKernelSig Sig = stencilSig();
  {
    Engine A(optsFor(Dir));
    if (!A.available())
      GTEST_SKIP() << "no host compiler: " << A.unavailableReason();
    auto K = A.kernel(E, Sig);
    ASSERT_TRUE(K) << K.error().toString();
    EXPECT_EQ(1, A.stats().Compiled);
  }
  Engine B(optsFor(Dir));
  auto K = B.kernel(E, Sig);
  ASSERT_TRUE(K) << K.error().toString();
  EXPECT_EQ(0, B.stats().Compiled);
  EXPECT_EQ(1, B.stats().CacheHits);
  expectKernelMatchesEval(*K, E, Sig, 19);
}

TEST(JitEngine, FlagChangeInvalidatesCacheKey) {
  const std::string Dir = freshCacheDir("flags");
  codegen::KernelExpr E = stencilExpr();
  codegen::SegmentKernelSig Sig = stencilSig();
  {
    Engine A(optsFor(Dir));
    if (!A.available())
      GTEST_SKIP() << "no host compiler: " << A.unavailableReason();
    auto K = A.kernel(E, Sig);
    ASSERT_TRUE(K) << K.error().toString();
  }
  EngineOptions O = optsFor(Dir);
  O.ExtraFlags = "-DLCDFG_JIT_TEST_STALE";
  Engine B(std::move(O));
  ASSERT_TRUE(B.available()) << B.unavailableReason();
  auto K = B.kernel(E, Sig);
  ASSERT_TRUE(K) << K.error().toString();
  // Different flags, different key: the old object must not be reused.
  EXPECT_EQ(1, B.stats().Compiled);
  EXPECT_EQ(0, B.stats().CacheHits);
}

TEST(JitEngine, CorruptCachedObjectIsRebuilt) {
  // Mutation test: a cache dir seeded with a corrupt object under the
  // right key must be rebuilt transparently, not surfaced as an error.
  // The corrupt file goes into a *second* cache dir under the basename
  // engine A produced (the key covers compiler + flags + source, not the
  // directory), because dlopen dedups by path within one process — the
  // path engine B opens must be one this process never loaded.
  const std::string DirA = freshCacheDir("corrupt-a");
  const std::string DirB = freshCacheDir("corrupt-b");
  codegen::KernelExpr E = stencilExpr();
  codegen::SegmentKernelSig Sig = stencilSig();
  {
    Engine A(optsFor(DirA));
    if (!A.available())
      GTEST_SKIP() << "no host compiler: " << A.unavailableReason();
    auto K = A.kernel(E, Sig);
    ASSERT_TRUE(K) << K.error().toString();
  }
  const fs::path SoA = onlyObjectIn(DirA);
  fs::create_directories(DirB);
  const std::string SoB = (fs::path(DirB) / SoA.filename()).string();
  {
    std::ofstream Out(SoB, std::ios::trunc);
    Out << "not an elf object";
  }
  Engine B(optsFor(DirB));
  auto K = B.kernel(E, Sig);
  ASSERT_TRUE(K) << K.error().toString();
  EXPECT_EQ(1, B.stats().Compiled) << "corrupt object must be rebuilt";
  EXPECT_EQ(0, B.stats().Failures);
  expectKernelMatchesEval(*K, E, Sig, 19);
}

TEST(JitEngine, DeadCompilerIsUnavailableNotFatal) {
  EngineOptions O = optsFor(freshCacheDir("dead"));
  O.Compiler = "/bin/false";
  Engine Eng(std::move(O));
  EXPECT_FALSE(Eng.available());
  EXPECT_FALSE(Eng.unavailableReason().empty());
  auto K = Eng.kernel(stencilExpr(), stencilSig());
  ASSERT_FALSE(K);
  EXPECT_EQ(support::ErrorCode::JitUnavailable, K.error().code());
  EXPECT_GE(Eng.stats().Failures, 1);
  EXPECT_EQ(0, Eng.stats().Compiled);
}

TEST(JitEngine, DisabledEngineRefusesWithE017) {
  EngineOptions O = optsFor(freshCacheDir("disabled"));
  O.Enabled = false;
  Engine Eng(std::move(O));
  EXPECT_FALSE(Eng.available());
  auto K = Eng.kernel(stencilExpr(), stencilSig());
  ASSERT_FALSE(K);
  EXPECT_EQ(support::ErrorCode::JitUnavailable, K.error().code());
}

//===----------------------------------------------------------------------===//
// End-to-end: the recovery ladder around a real plan.
//===----------------------------------------------------------------------===//

namespace {

/// MiniFluxDiv harness, mirroring the Recovery suite: deterministic seeded
/// inputs, persistent outputs in extent order for bit-comparison.
struct Harness {
  ir::LoopChain Chain;
  codegen::KernelRegistry Kernels;
  graph::Graph G;
  storage::StoragePlan Plan;
  exec::ParamEnv Env;

  explicit Harness(std::int64_t N)
      : Chain(mfd::buildChain2D()), G(graph::buildGraph(Chain)),
        Plan(storage::StoragePlan::build(G, /*UseAllocation=*/false)),
        Env{{"N", N}} {
    mfd::registerKernels(Chain, Kernels);
  }

  storage::ConcreteStorage freshStore() {
    storage::ConcreteStorage Store(Plan, Env);
    for (const std::string &Name : Chain.arrayNames()) {
      if (Chain.array(Name).Kind != ir::StorageKind::PersistentInput)
        continue;
      Chain.array(Name).Extent->forEachPoint(
          Env, [&](const std::vector<std::int64_t> &P) {
            double V = 1.0;
            for (std::size_t D = 0; D < P.size(); ++D)
              V += 0.001 * static_cast<double>((D + 3) * P[D]);
            Store.at(Name, P) = V;
          });
    }
    return Store;
  }

  std::vector<double> outputs(storage::ConcreteStorage &Store) {
    std::vector<double> Out;
    for (const std::string &Name : Chain.arrayNames()) {
      if (Chain.array(Name).Kind != ir::StorageKind::PersistentOutput)
        continue;
      Chain.array(Name).Extent->forEachPoint(
          Env, [&](const std::vector<std::int64_t> &P) {
            Out.push_back(Store.at(Name, P));
          });
    }
    return Out;
  }

  std::vector<double> oracle() {
    storage::ConcreteStorage Store = freshStore();
    exec::ExecutionPlan P = exec::ExecutionPlan::fromChain(Chain, Store, Env);
    exec::RunOptions O;
    O.Batched = false;
    O.Threads = 1;
    exec::runPlan(P, Kernels, Store, O);
    return outputs(Store);
  }
};

} // namespace

TEST(JitRecovery, BrokenEngineDescendsL008BitIdentical) {
  // The satellite mutation test: a JIT engine that cannot deliver (dead
  // host compiler) must cost exactly one L008 descent, after which the
  // run completes on the interpreted batched bodies with outputs bitwise
  // equal to the scalar-serial oracle.
  Harness S(8);
  std::vector<double> Expected = S.oracle();

  EngineOptions O = optsFor(freshCacheDir("l008"));
  O.Compiler = "/bin/false";
  Engine Broken(std::move(O));

  storage::ConcreteStorage Store = S.freshStore();
  exec::ExecutionPlan Plan = exec::ExecutionPlan::fromChain(S.Chain, Store, S.Env);
  exec::RecoverOptions RO;
  RO.Run.Batched = true;
  RO.Run.Threads = 1;
  RO.Run.Kernels = exec::KernelMode::Jit;
  RO.Run.Jit = &Broken;
  exec::RunReport R = exec::runWithRecovery(Plan, S.Kernels, Store, RO);

  EXPECT_TRUE(R.Completed) << R.toString();
  EXPECT_TRUE(R.Recovered) << R.toString();
  ASSERT_EQ(1u, R.Descents.size()) << R.toString();
  EXPECT_EQ(exec::ReasonJitUnavailable, R.Descents[0].Reason);
  EXPECT_EQ("jit-batched-serial", R.Descents[0].Rung);
  EXPECT_EQ("batched-serial", R.FinalRung);

  std::vector<double> Got = S.outputs(Store);
  ASSERT_EQ(Expected.size(), Got.size());
  for (std::size_t I = 0; I < Expected.size(); ++I)
    EXPECT_EQ(Expected[I], Got[I]) << "flat index " << I;
}

TEST(JitRecovery, WorkingEngineCompilesAndStaysBitIdentical) {
  Harness S(8);
  Engine Eng(optsFor(freshCacheDir("e2e")));
  if (!Eng.available())
    GTEST_SKIP() << "no host compiler: " << Eng.unavailableReason();

  std::vector<double> Expected = S.oracle();

  storage::ConcreteStorage Store = S.freshStore();
  exec::ExecutionPlan Plan = exec::ExecutionPlan::fromChain(S.Chain, Store, S.Env);
  exec::RecoverOptions RO;
  RO.Run.Batched = true;
  RO.Run.Threads = 2;
  RO.Run.Kernels = exec::KernelMode::Jit;
  RO.Run.Jit = &Eng;
  exec::RunReport R = exec::runWithRecovery(Plan, S.Kernels, Store, RO);

  EXPECT_TRUE(R.Completed) << R.toString();
  EXPECT_FALSE(R.Recovered) << R.toString();
  EXPECT_EQ("jit-batched-parallel", R.FinalRung);
  EXPECT_GE(Eng.stats().Compiled + Eng.stats().CacheHits, 1);

  std::vector<double> Got = S.outputs(Store);
  ASSERT_EQ(Expected.size(), Got.size());
  for (std::size_t I = 0; I < Expected.size(); ++I)
    EXPECT_EQ(Expected[I], Got[I]) << "flat index " << I;
}
