//===- tests/fuzz/ParserFuzzTest.cpp --------------------------------------===//
//
// Deterministic fuzz smoke for the pragma parser: 10,000 mutated variants
// of valid chain sources must all come back as a chain or a structured
// diagnostic — never an abort, an assert, or an out-of-range crash. The
// mutator is seeded, so any failure reproduces from its iteration index.
//
//===----------------------------------------------------------------------===//

#include "parser/PragmaParser.h"

#include <gtest/gtest.h>

#include <random>
#include <string>

using namespace lcdfg;

namespace {

const char *Corpus[] = {
    R"(
#pragma omplc parallel(fuse)
{
#pragma omplc for domain(0:N, 0:N-1) with (x, y) \
    write VAL_1{(x,y)} read VAL_0{(x,y)}
S1: VAL_1(x,y) = func1(VAL_0(x,y));
#pragma omplc for domain(0:N-1, 0:N-1) with (x, y) \
    write VAL_2{(x,y)} read VAL_1{(x,y),(x+1,y)}
S2: VAL_2(x,y) = func2(VAL_1(x,y), VAL_1(x+1,y));
}
)",
    R"(
#pragma omplc parallel(fuse)
{
#pragma omplc for domain(0:X+1, 0:Y, 0:Z) with (x, y, z) order(z,y,x) \
    write A{(x,y,z)} read B{(x-1,y,z),(x,y,z)}
S1: A(x,y,z) = f(B(x-1,y,z), B(x,y,z));
}
)",
    R"(
#pragma omplc for domain(0:N) with (x) write OUT{(x)} read IN{(x)}
S: OUT(x) = g(IN(x));
)",
};

/// Byte- and token-level mutations; each preserves determinism and keeps
/// the input small enough that 10k parses stay fast.
std::string mutate(std::string Text, std::mt19937_64 &Rng) {
  if (Text.empty())
    return Text;
  auto At = [&](std::size_t Bound) { return Rng() % Bound; };
  const char Alphabet[] = "(){}:,+-\\ abcxyzNSW0189_#";
  switch (At(7)) {
  case 0: // Flip one byte.
    Text[At(Text.size())] = Alphabet[At(sizeof(Alphabet) - 1)];
    break;
  case 1: { // Delete a span.
    std::size_t Pos = At(Text.size());
    Text.erase(Pos, std::min<std::size_t>(1 + At(8), Text.size() - Pos));
    break;
  }
  case 2: // Insert noise.
    Text.insert(At(Text.size()),
                std::string(1 + At(4), Alphabet[At(sizeof(Alphabet) - 1)]));
    break;
  case 3: // Truncate.
    Text.resize(At(Text.size()));
    break;
  case 4: { // Duplicate a span (repeated clauses, doubled pragmas).
    std::size_t Pos = At(Text.size());
    std::string Dup = Text.substr(Pos, std::min<std::size_t>(
                                           1 + At(24), Text.size() - Pos));
    Text.insert(Pos, Dup);
    break;
  }
  case 5: { // Swap two spans.
    std::size_t A = At(Text.size()), B = At(Text.size());
    std::swap(Text[A], Text[B]);
    break;
  }
  case 6: // Splice two corpus entries.
    Text = Text.substr(0, At(Text.size())) +
           std::string(Corpus[At(std::size(Corpus))]);
    break;
  }
  return Text;
}

} // namespace

TEST(ParserFuzz, TenThousandMutatedInputsNeverAbort) {
  std::mt19937_64 Rng(0x5eed4c0de);
  int Parsed = 0, Rejected = 0;
  for (int Iter = 0; Iter < 10000; ++Iter) {
    std::string Input = Corpus[Rng() % std::size(Corpus)];
    unsigned Rounds = 1 + Rng() % 4;
    for (unsigned R = 0; R < Rounds; ++R)
      Input = mutate(std::move(Input), Rng);

    parser::ParseResult Result = parser::parseLoopChain(Input);
    if (Result) {
      ++Parsed;
      // A parsed chain must satisfy the IR validator (the parser feeds
      // tryAddNest, so anything it accepts is well-formed by construction).
      support::Status S = Result.Chain->validate();
      EXPECT_TRUE(S.isOk()) << "iter " << Iter << ": " << S.toString();
    } else {
      ++Rejected;
      EXPECT_FALSE(Result.Error.empty()) << "iter " << Iter;
      // Position info, when present, must stay inside the snippet.
      if (Result.Column > 0 && !Result.Snippet.empty()) {
        EXPECT_LE(Result.Column, Result.Snippet.size() + 1)
            << "iter " << Iter;
      }
      EXPECT_EQ(Result.status().code(), support::ErrorCode::Parse);
    }
  }
  // The mutator must exercise both outcomes to mean anything.
  EXPECT_GT(Parsed, 0);
  EXPECT_GT(Rejected, 0);
}
