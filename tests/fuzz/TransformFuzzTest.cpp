//===- tests/fuzz/TransformFuzzTest.cpp -----------------------------------===//
//
// Random transform-sequence stress tester. Random scripts (legal and
// hostile) run against random chains; whatever state the graph lands in
// must (a) keep the M2DFG invariants, (b) pass the static plan verifier,
// and (c) execute bit-identically to the untransformed original — the
// transforms check their own preconditions, so every sequence that the
// script runner accepts is a survivor and must compare clean. Hostile
// commands (unknown statements, bogus ops) must fail structurally.
//
//===----------------------------------------------------------------------===//

#include "../common/RandomChain.h"

#include "codegen/Generator.h"
#include "exec/ExecutionPlan.h"
#include "exec/PlanRunner.h"
#include "graph/GraphBuilder.h"
#include "obs/Trace.h"
#include "obs/TraceCheck.h"
#include "parser/ScriptRunner.h"
#include "storage/StorageMap.h"
#include "verify/PlanVerifier.h"

#include <gtest/gtest.h>

#include <random>
#include <sstream>

using namespace lcdfg;
using namespace lcdfg::testutil;

namespace {

/// One random script command; roughly half target real statements, the
/// rest are hostile (unknown labels, junk arguments).
std::string randomCommand(std::mt19937_64 &Rng, unsigned NumNests) {
  auto Stmt = [&] {
    // Mostly valid labels, sometimes out of range.
    return "S" + std::to_string(Rng() % (NumNests + 2));
  };
  std::ostringstream OS;
  switch (Rng() % 8) {
  case 0:
    OS << "fusepc " << Stmt() << " " << Stmt();
    break;
  case 1:
    OS << "fuserr " << Stmt() << " " << Stmt();
    break;
  case 2:
    OS << "collapse tmp" << Rng() % (NumNests + 1) << " " << Stmt();
    break;
  case 3:
    OS << "interchange " << Stmt() << " " << Rng() % 3 << " " << Rng() % 3;
    break;
  case 4:
    OS << "reschedule " << Stmt() << " " << Rng() % 8;
    break;
  case 5:
    OS << "reduce";
    break;
  case 6:
    OS << "compact";
    break;
  case 7:
    OS << (Rng() % 2 ? "frobnicate S0" : "fusepc S0"); // hostile
    break;
  }
  return OS.str();
}

using Env = std::map<std::string, std::int64_t, std::less<>>;

void seed(ir::LoopChain &Chain, storage::ConcreteStorage &Store,
          const Env &E) {
  for (const std::string &Name : Chain.arrayNames()) {
    if (Chain.array(Name).Kind != ir::StorageKind::PersistentInput)
      continue;
    Chain.array(Name).Extent->forEachPoint(
        E, [&](const std::vector<std::int64_t> &P) {
          double V = 1.0;
          for (std::size_t D = 0; D < P.size(); ++D)
            V += 0.01 * static_cast<double>((D + 2) * P[D] + 1);
          Store.at(Name, P) = V;
        });
  }
}

std::vector<double> collect(ir::LoopChain &Chain,
                            storage::ConcreteStorage &Store, const Env &E) {
  std::vector<double> Out;
  for (const std::string &Name : Chain.arrayNames()) {
    if (Chain.array(Name).Kind != ir::StorageKind::PersistentOutput)
      continue;
    Chain.array(Name).Extent->forEachPoint(
        E, [&](const std::vector<std::int64_t> &P) {
          Out.push_back(Store.at(Name, P));
        });
  }
  return Out;
}

} // namespace

class TransformFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TransformFuzz, RandomSequencesVerifyAndCompareBitIdentical) {
  std::mt19937_64 Rng(GetParam() * 0x9e3779b97f4a7c15ull + 1);
  RandomChainOptions Options;
  Options.Seed = GetParam();
  Options.Rank = 1 + GetParam() % 3;
  Options.NumNests = 3 + GetParam() % 4;
  ir::LoopChain Chain = randomChain(Options);
  codegen::KernelRegistry Kernels;
  registerGenericKernels(Chain, Kernels);
  Env E{{"N", 6}};

  // Oracle: the untransformed chain on the scalar-serial rung.
  graph::Graph Ref = graph::buildGraph(Chain);
  storage::StoragePlan RefPlan =
      storage::StoragePlan::build(Ref, /*UseAllocation=*/false);
  storage::ConcreteStorage RefStore(RefPlan, E);
  seed(Chain, RefStore, E);
  exec::ExecutionPlan OraclePlan =
      exec::ExecutionPlan::fromChain(Chain, RefStore, E);
  exec::RunOptions Serial;
  Serial.Batched = false;
  exec::runPlan(OraclePlan, Kernels, RefStore, Serial);
  std::vector<double> Expected = collect(Chain, RefStore, E);

  graph::Graph G = graph::buildGraph(Chain);
  unsigned NumCommands = 1 + Rng() % 6;
  std::ostringstream Script;
  for (unsigned C = 0; C < NumCommands; ++C)
    Script << randomCommand(Rng, Options.NumNests) << "\n";

  parser::ScriptResult SR = parser::runScript(G, Script.str());
  if (!SR.Ok) {
    EXPECT_FALSE(SR.Error.empty()) << Script.str();
  }

  // Whatever prefix of the script applied, the graph must still satisfy
  // its invariants (transforms refuse rather than corrupt).
  try {
    G.verify();
  } catch (const support::StatusError &Err) {
    FAIL() << "script corrupted the graph:\n"
           << Script.str() << Err.status().toString();
  }

  // Lower and statically verify the surviving schedule.
  storage::StoragePlan SPlan = storage::StoragePlan::build(G);
  storage::ConcreteStorage Store(SPlan, E);
  seed(Chain, Store, E);
  codegen::AstPtr Ast = codegen::generate(G);
  auto Plan = exec::ExecutionPlan::tryFromAst(G, *Ast, Store, E);
  ASSERT_TRUE(static_cast<bool>(Plan))
      << "script:\n" << Script.str() << Plan.error().toString();

  verify::PlanVerifier V(*Plan);
  verify::Diagnostics Diags = V.verify();
  EXPECT_FALSE(Diags.hasErrors())
      << "script:\n" << Script.str() << Diags.toString();
  if (Diags.hasErrors())
    return; // Rejected survivor: structured refusal, nothing to compare.

  exec::runPlan(*Plan, Kernels, Store, Serial);
  std::vector<double> Got = collect(Chain, Store, E);
  ASSERT_EQ(Expected.size(), Got.size());
  for (std::size_t I = 0; I < Expected.size(); ++I)
    EXPECT_EQ(Expected[I], Got[I])
        << "flat index " << I << ", script:\n" << Script.str();

  // The survivor must also trace clean: a parallel run with the span
  // tracer armed, on a fresh store, whose recorded spans satisfy the
  // plan's dependence closure (obs::checkTrace) with nothing dropped.
  {
    storage::ConcreteStorage TraceStore(SPlan, E);
    seed(Chain, TraceStore, E);
    obs::Tracer &Tr = obs::Tracer::global();
    Tr.enable();
    exec::RunOptions Parallel;
    Parallel.Threads = 2;
    try {
      exec::runPlan(*Plan, Kernels, TraceStore, Parallel);
    } catch (...) {
      (void)Tr.drain();
      Tr.disable();
      throw;
    }
    obs::Trace T = Tr.drain();
    Tr.disable();
    verify::Diagnostics TDiags = obs::checkTrace(*Plan, T);
    EXPECT_TRUE(TDiags.all().empty())
        << "script:\n" << Script.str() << TDiags.toString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransformFuzz,
                         ::testing::Range<std::uint64_t>(1, 41));
