//===- tests/poly/AffineExprTest.cpp --------------------------------------===//

#include "poly/AffineExpr.h"

#include <gtest/gtest.h>

using namespace lcdfg;
using poly::AffineExpr;

TEST(AffineExpr, Construction) {
  AffineExpr C(7);
  EXPECT_TRUE(C.isConstant());
  EXPECT_EQ(C.constant(), 7);

  AffineExpr X = AffineExpr::var("x");
  EXPECT_FALSE(X.isConstant());
  EXPECT_EQ(X.coeff("x"), 1);
  EXPECT_EQ(X.coeff("y"), 0);
  EXPECT_TRUE(X.references("x"));
  EXPECT_FALSE(X.references("y"));
}

TEST(AffineExpr, Arithmetic) {
  AffineExpr X = AffineExpr::var("x"), N = AffineExpr::var("N");
  AffineExpr E = X * 2 + N - AffineExpr(3);
  EXPECT_EQ(E.coeff("x"), 2);
  EXPECT_EQ(E.coeff("N"), 1);
  EXPECT_EQ(E.constant(), -3);
  EXPECT_EQ((E - E).toString(), "0");
  // Coefficients that cancel disappear entirely.
  AffineExpr Z = X - X;
  EXPECT_TRUE(Z.isConstant());
}

TEST(AffineExpr, Substitute) {
  AffineExpr X = AffineExpr::var("x"), N = AffineExpr::var("N");
  AffineExpr E = X * 3 + AffineExpr(1);
  AffineExpr S = E.substitute("x", N - AffineExpr(1));
  EXPECT_EQ(S.coeff("N"), 3);
  EXPECT_EQ(S.constant(), -2);
  // Substituting an absent variable is a no-op.
  EXPECT_EQ(E.substitute("q", N), E);
}

TEST(AffineExpr, Evaluate) {
  AffineExpr E = AffineExpr::var("x") * 2 + AffineExpr::var("N") +
                 AffineExpr(5);
  std::map<std::string, std::int64_t, std::less<>> Env{{"x", 3}, {"N", 16}};
  EXPECT_EQ(E.evaluate(Env), 27);
}

TEST(AffineExpr, ToPolynomial) {
  AffineExpr E = AffineExpr::var("N") * 2 + AffineExpr(3);
  EXPECT_EQ(E.toPolynomial().toString(), "2N+3");
  EXPECT_EQ(AffineExpr(0).toPolynomial().toString(), "0");
}

TEST(AffineExpr, SignForParamsGE1) {
  using SK = AffineExpr::SignKind;
  AffineExpr N = AffineExpr::var("N");
  EXPECT_EQ(AffineExpr(0).signForParamsGE1(), SK::Zero);
  EXPECT_EQ(AffineExpr(2).signForParamsGE1(), SK::NonNegative);
  EXPECT_EQ(AffineExpr(-2).signForParamsGE1(), SK::NonPositive);
  // N - 1 >= 0 for N >= 1.
  EXPECT_EQ((N - AffineExpr(1)).signForParamsGE1(), SK::NonNegative);
  // N - 2 is negative at N = 1, positive at N = 3.
  EXPECT_EQ((N - AffineExpr(2)).signForParamsGE1(), SK::Unknown);
  EXPECT_EQ((-N).signForParamsGE1(), SK::NonPositive);
  EXPECT_EQ((AffineExpr(1) - N).signForParamsGE1(), SK::NonPositive);
}

TEST(AffineExpr, ToString) {
  AffineExpr X = AffineExpr::var("x");
  EXPECT_EQ((X + AffineExpr(1)).toString(), "x+1");
  EXPECT_EQ((X * -1).toString(), "-x");
  EXPECT_EQ((X * 2 - AffineExpr(5)).toString(), "2x-5");
  EXPECT_EQ(AffineExpr(0).toString(), "0");
}

struct ParseCase {
  const char *Text;
  const char *Expected; // nullptr => parse failure expected
};

class AffineExprParse : public ::testing::TestWithParam<ParseCase> {};

TEST_P(AffineExprParse, RoundTrips) {
  const ParseCase &C = GetParam();
  auto E = AffineExpr::parse(C.Text);
  if (!C.Expected) {
    EXPECT_FALSE(E.has_value()) << C.Text;
    return;
  }
  ASSERT_TRUE(E.has_value()) << C.Text;
  EXPECT_EQ(E->toString(), C.Expected);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AffineExprParse,
    ::testing::Values(ParseCase{"0", "0"}, ParseCase{"x", "x"},
                      ParseCase{"x+1", "x+1"}, ParseCase{"x - 2", "x-2"},
                      ParseCase{"N-1", "N-1"}, ParseCase{"2N+3", "2N+3"},
                      ParseCase{"2*N + 3", "2N+3"},
                      ParseCase{"-x", "-x"}, ParseCase{"x+y-1", "x+y-1"},
                      ParseCase{"X+1", "X+1"}, ParseCase{"  7 ", "7"},
                      ParseCase{"", nullptr}, ParseCase{"+", nullptr},
                      ParseCase{"x++1", nullptr}));
