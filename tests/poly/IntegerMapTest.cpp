//===- tests/poly/IntegerMapTest.cpp --------------------------------------===//

#include "poly/IntegerMap.h"

#include <gtest/gtest.h>

using namespace lcdfg;
using poly::AffineExpr;
using poly::BoxSet;
using poly::Dim;
using poly::IntegerMap;

TEST(IntegerMap, IdentityAndTranslation) {
  IntegerMap Id = IntegerMap::identity({"y", "x"});
  EXPECT_TRUE(Id.isTranslation());
  EXPECT_TRUE(Id.isSeparable());
  EXPECT_EQ(Id.translationOffsets(), (std::vector<std::int64_t>{0, 0}));

  IntegerMap T = IntegerMap::translation({"y", "x"}, {1, -2});
  EXPECT_TRUE(T.isTranslation());
  EXPECT_EQ(T.translationOffsets(), (std::vector<std::int64_t>{1, -2}));
  EXPECT_EQ(T.toString(), "{ [y, x] -> [y+1, x-2] }");
}

TEST(IntegerMap, ApplyToPoint) {
  IntegerMap T = IntegerMap::translation({"y", "x"}, {1, -2});
  EXPECT_EQ(T.apply({5, 5}, {}), (std::vector<std::int64_t>{6, 3}));
}

TEST(IntegerMap, ApplyToBox) {
  AffineExpr N = AffineExpr::var("N");
  BoxSet Cells({Dim{"y", AffineExpr(0), N - AffineExpr(1)},
                Dim{"x", AffineExpr(0), N - AffineExpr(1)}});
  IntegerMap T = IntegerMap::translation({"y", "x"}, {0, 2});
  BoxSet Image = T.apply(Cells);
  EXPECT_EQ(Image.dim(1).Lower.toString(), "2");
  EXPECT_EQ(Image.dim(1).Upper.toString(), "N+1");
  EXPECT_EQ(Image.cardinality(), Cells.cardinality());
}

TEST(IntegerMap, ComposeTranslations) {
  IntegerMap A = IntegerMap::translation({"x"}, {3});
  IntegerMap B = IntegerMap::translation({"x"}, {-1});
  IntegerMap C = A.compose(B);
  EXPECT_TRUE(C.isTranslation());
  EXPECT_EQ(C.translationOffsets(), (std::vector<std::int64_t>{2}));
}

TEST(IntegerMap, Inverse) {
  IntegerMap T = IntegerMap::translation({"y", "x"}, {1, -2});
  IntegerMap Inv = T.inverse();
  EXPECT_EQ(Inv.translationOffsets(), (std::vector<std::int64_t>{-1, 2}));
  IntegerMap Round = T.compose(Inv);
  EXPECT_EQ(Round.translationOffsets(), (std::vector<std::int64_t>{0, 0}));
}

TEST(IntegerMap, SeparabilityDetection) {
  // [x, y] -> [x + y] is not separable (two input dims in one output).
  IntegerMap Bad({"x", "y"},
                 {AffineExpr::var("x") + AffineExpr::var("y")});
  EXPECT_FALSE(Bad.isSeparable());
  // [x] -> [2x] is not separable (coefficient != 1).
  IntegerMap Scaled({"x"}, {AffineExpr::var("x") * 2});
  EXPECT_FALSE(Scaled.isSeparable());
  // A projection [y, x] -> [x] is separable.
  IntegerMap Proj({"y", "x"}, {AffineExpr::var("x")});
  EXPECT_TRUE(Proj.isSeparable());
  EXPECT_FALSE(Proj.isTranslation());
}

TEST(IntegerMap, ProjectionApply) {
  AffineExpr N = AffineExpr::var("N");
  BoxSet Cells({Dim{"y", AffineExpr(1), N},
                Dim{"x", AffineExpr(0), N - AffineExpr(1)}});
  IntegerMap Proj({"y", "x"}, {AffineExpr::var("x")});
  BoxSet Image = Proj.apply(Cells);
  ASSERT_EQ(Image.rank(), 1u);
  EXPECT_EQ(Image.dim(0).Lower.toString(), "0");
  EXPECT_EQ(Image.dim(0).Upper.toString(), "N-1");
}
