//===- tests/poly/IntegerSetTest.cpp --------------------------------------===//

#include "poly/IntegerSet.h"

#include <gtest/gtest.h>

using namespace lcdfg;
using poly::AffineExpr;
using poly::BoxSet;
using poly::Dim;
using poly::IntegerSet;

namespace {

BoxSet interval(std::int64_t Lo, std::int64_t Hi) {
  return BoxSet({Dim{"x", AffineExpr(Lo), AffineExpr(Hi)}});
}

} // namespace

TEST(IntegerSet, EmptyAndUnion) {
  IntegerSet Empty;
  EXPECT_TRUE(Empty.isEmpty());
  EXPECT_EQ(Empty.numBoxes(), 0u);
  EXPECT_EQ(Empty.toString(), "{ }");

  IntegerSet A(interval(0, 3));
  IntegerSet B(interval(10, 12));
  IntegerSet U = A.unionWith(B);
  EXPECT_EQ(U.numBoxes(), 2u);
  EXPECT_FALSE(U.isEmpty());
  EXPECT_EQ(U.cardinality().toString(), "7");
}

TEST(IntegerSet, Intersection) {
  IntegerSet U = IntegerSet(interval(0, 3)).unionWith(interval(10, 12));
  IntegerSet I = U.intersect(interval(2, 11));
  EXPECT_EQ(I.numBoxes(), 2u);
  EXPECT_EQ(I.numPoints({}), 2 + 2);
  // Disjoint clip drops boxes entirely.
  IntegerSet None = U.intersect(interval(5, 8));
  EXPECT_TRUE(None.isEmpty());
}

TEST(IntegerSet, Contains) {
  IntegerSet U = IntegerSet(interval(0, 3)).unionWith(interval(10, 12));
  EXPECT_TRUE(U.contains({0}, {}));
  EXPECT_TRUE(U.contains({11}, {}));
  EXPECT_FALSE(U.contains({5}, {}));
}

TEST(IntegerSet, SymbolicCardinality) {
  AffineExpr N = AffineExpr::var("N");
  BoxSet Cells({Dim{"x", AffineExpr(0), N - AffineExpr(1)}});
  BoxSet Faces({Dim{"x", AffineExpr(0), N}});
  IntegerSet U = IntegerSet(Cells).unionWith(Faces);
  // Cardinality sums disjuncts (callers keep them disjoint when it
  // matters).
  EXPECT_EQ(U.cardinality().toString(), "2N+1");
}
