//===- tests/poly/BoxSetTest.cpp ------------------------------------------===//

#include "poly/BoxSet.h"

#include <gtest/gtest.h>

using namespace lcdfg;
using poly::AffineExpr;
using poly::BoxSet;
using poly::Dim;

namespace {

AffineExpr N() { return AffineExpr::var("N"); }

BoxSet cells2D() {
  return BoxSet({Dim{"y", AffineExpr(0), N() - AffineExpr(1)},
                 Dim{"x", AffineExpr(0), N() - AffineExpr(1)}});
}

BoxSet xFaces2D() {
  return BoxSet({Dim{"y", AffineExpr(0), N() - AffineExpr(1)},
                 Dim{"x", AffineExpr(0), N()}});
}

std::map<std::string, std::int64_t, std::less<>> env(std::int64_t V) {
  return {{"N", V}};
}

} // namespace

TEST(BoxSet, CardinalityMatchesPaperLabels) {
  // Figure 3: N^2 cells, N^2+N faces, N^2+4N inputs (x footprint).
  EXPECT_EQ(cells2D().cardinality().toString(), "N^2");
  EXPECT_EQ(xFaces2D().cardinality().toString(), "N^2+N");
  BoxSet InputFootprint({Dim{"y", AffineExpr(0), N() - AffineExpr(1)},
                         Dim{"x", AffineExpr(-2), N() + AffineExpr(1)}});
  EXPECT_EQ(InputFootprint.cardinality().toString(), "N^2+4N");
}

TEST(BoxSet, NumPointsAgreesWithCardinality) {
  for (std::int64_t V : {1, 4, 16}) {
    EXPECT_EQ(cells2D().numPoints(env(V)), cells2D().cardinality().evaluate(V));
    EXPECT_EQ(xFaces2D().numPoints(env(V)),
              xFaces2D().cardinality().evaluate(V));
  }
}

TEST(BoxSet, Translation) {
  BoxSet T = cells2D().translated({1, -2});
  EXPECT_EQ(T.dim(0).Lower.toString(), "1");
  EXPECT_EQ(T.dim(0).Upper.toString(), "N");
  EXPECT_EQ(T.dim(1).Lower.toString(), "-2");
  // Translation preserves cardinality.
  EXPECT_EQ(T.cardinality(), cells2D().cardinality());
}

TEST(BoxSet, Expansion) {
  BoxSet E = cells2D().expanded(1, 2, 1);
  EXPECT_EQ(E.dim(1).Lower.toString(), "-2");
  EXPECT_EQ(E.dim(1).Upper.toString(), "N");
  EXPECT_EQ(E.cardinality().toString(), "N^2+3N");
}

TEST(BoxSet, IntersectAndHull) {
  BoxSet A = cells2D();
  BoxSet B = cells2D().translated({0, 1});
  BoxSet I = A.intersect(B);
  EXPECT_EQ(I.dim(1).Lower.toString(), "1");
  EXPECT_EQ(I.dim(1).Upper.toString(), "N-1");
  BoxSet H = A.hull(B);
  EXPECT_EQ(H.dim(1).Lower.toString(), "0");
  EXPECT_EQ(H.dim(1).Upper.toString(), "N");
}

TEST(BoxSet, EmptyDetection) {
  BoxSet Empty({Dim{"x", AffineExpr(5), AffineExpr(2)}});
  EXPECT_TRUE(Empty.isProvablyEmpty());
  EXPECT_FALSE(cells2D().isProvablyEmpty());
  EXPECT_EQ(Empty.numPoints({}), 0);
}

TEST(BoxSet, ContainsAndEnumerate) {
  auto E = env(4);
  EXPECT_TRUE(cells2D().contains({0, 0}, E));
  EXPECT_TRUE(cells2D().contains({3, 3}, E));
  EXPECT_FALSE(cells2D().contains({4, 0}, E));
  EXPECT_FALSE(cells2D().contains({0, -1}, E));

  // Lexicographic enumeration: first dim outermost, last fastest.
  std::vector<std::vector<std::int64_t>> Points;
  BoxSet Small({Dim{"y", AffineExpr(0), AffineExpr(1)},
                Dim{"x", AffineExpr(0), AffineExpr(1)}});
  Small.forEachPoint({}, [&](const std::vector<std::int64_t> &P) {
    Points.push_back(P);
  });
  ASSERT_EQ(Points.size(), 4u);
  EXPECT_EQ(Points[0], (std::vector<std::int64_t>{0, 0}));
  EXPECT_EQ(Points[1], (std::vector<std::int64_t>{0, 1}));
  EXPECT_EQ(Points[2], (std::vector<std::int64_t>{1, 0}));
  EXPECT_EQ(Points[3], (std::vector<std::int64_t>{1, 1}));
}

TEST(BoxSet, Substitution) {
  BoxSet S = cells2D().substituted("N", AffineExpr(8));
  EXPECT_EQ(S.dim(0).Upper.toString(), "7");
  EXPECT_EQ(S.numPoints({}), 64);
}

TEST(BoxSet, AffineMinMax) {
  AffineExpr Zero(0), One(1);
  EXPECT_EQ(poly::affineMax(Zero, One).toString(), "1");
  EXPECT_EQ(poly::affineMin(Zero, One).toString(), "0");
  EXPECT_EQ(poly::affineMax(N(), One).toString(), "N");
  EXPECT_EQ(poly::affineMin(N() - AffineExpr(1), N()).toString(), "N-1");
}

TEST(BoxSet, DimIndexLookup) {
  BoxSet B = cells2D();
  EXPECT_EQ(B.dimIndex("y"), 0u);
  EXPECT_EQ(B.dimIndex("x"), 1u);
  EXPECT_FALSE(B.dimIndex("z").has_value());
}

class BoxCardinalityProperty : public ::testing::TestWithParam<int> {};

TEST_P(BoxCardinalityProperty, EnumerationMatchesFormula) {
  int V = GetParam();
  auto E = env(V);
  for (const BoxSet &B :
       {cells2D(), xFaces2D(), cells2D().expanded(0, 1, 2),
        cells2D().translated({-2, 3})}) {
    std::int64_t Count = 0;
    B.forEachPoint(E, [&](const std::vector<std::int64_t> &P) {
      ++Count;
      EXPECT_TRUE(B.contains(P, E));
    });
    EXPECT_EQ(Count, B.cardinality().evaluate(V));
    EXPECT_EQ(Count, B.numPoints(E));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BoxCardinalityProperty,
                         ::testing::Values(1, 2, 3, 5, 8));
