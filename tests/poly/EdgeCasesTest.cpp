//===- tests/poly/EdgeCasesTest.cpp ---------------------------------------===//
//
// Corner cases and failure paths of the polyhedral substrate: ambiguous
// bound comparisons, non-separable maps, stray variables, and structural
// properties (hull contains its arguments; intersection is contained in
// both).
//
//===----------------------------------------------------------------------===//

#include "poly/BoxSet.h"
#include "poly/IntegerMap.h"

#include "support/Status.h"

#include <gtest/gtest.h>

using namespace lcdfg;
using poly::AffineExpr;
using poly::BoxSet;
using poly::Dim;
using poly::IntegerMap;

TEST(PolyEdgeCases, AmbiguousBoundComparisonRaises) {
  // N - 2 vs 0 flips sign between N = 1 and N = 3. Reachable from hostile
  // chain sources, so it must surface as a recoverable E002, not abort.
  AffineExpr N = AffineExpr::var("N");
  try {
    poly::affineMax(N - AffineExpr(2), AffineExpr(0));
    FAIL() << "expected StatusError";
  } catch (const support::StatusError &E) {
    EXPECT_EQ(E.status().code(), support::ErrorCode::InvalidChain);
    EXPECT_NE(E.status().message().find("ambiguous bound comparison"),
              std::string::npos);
  }
}

TEST(PolyEdgeCases, TwoParameterComparisons) {
  // M vs N is undecidable; M + N vs N is fine.
  AffineExpr M = AffineExpr::var("M"), N = AffineExpr::var("N");
  EXPECT_THROW(poly::affineMax(M, N), support::StatusError);
  EXPECT_EQ(poly::affineMax(M + N, N).toString(), "M+N");
  EXPECT_EQ(poly::affineMin(M + N, N).toString(), "N");
}

TEST(PolyEdgeCases, ToPolynomialRejectsStrayVariables) {
  AffineExpr E = AffineExpr::var("x") + AffineExpr::var("N");
  EXPECT_THROW(E.toPolynomial("N"), support::StatusError);
}

TEST(PolyEdgeCases, NonSeparableMapApplyAborts) {
  IntegerMap Bad({"x", "y"},
                 {AffineExpr::var("x") + AffineExpr::var("y")});
  BoxSet Box({Dim{"x", AffineExpr(0), AffineExpr(3)},
              Dim{"y", AffineExpr(0), AffineExpr(3)}});
  EXPECT_DEATH(Bad.apply(Box), "not separable");
}

TEST(PolyEdgeCases, InverseOfNonTranslationAborts) {
  IntegerMap Proj({"y", "x"}, {AffineExpr::var("x")});
  EXPECT_DEATH(Proj.inverse(), "only translations");
}

TEST(PolyEdgeCases, HullContainsBothArguments) {
  AffineExpr N = AffineExpr::var("N");
  BoxSet A({Dim{"x", AffineExpr(0), N}});
  BoxSet B({Dim{"x", AffineExpr(-3), N - AffineExpr(2)}});
  BoxSet H = A.hull(B);
  std::map<std::string, std::int64_t, std::less<>> Env{{"N", 7}};
  A.forEachPoint(Env, [&](const std::vector<std::int64_t> &P) {
    EXPECT_TRUE(H.contains(P, Env));
  });
  B.forEachPoint(Env, [&](const std::vector<std::int64_t> &P) {
    EXPECT_TRUE(H.contains(P, Env));
  });
}

TEST(PolyEdgeCases, IntersectionContainedInBoth) {
  AffineExpr N = AffineExpr::var("N");
  BoxSet A({Dim{"x", AffineExpr(0), N}});
  BoxSet B({Dim{"x", AffineExpr(2), N + AffineExpr(5)}});
  BoxSet I = A.intersect(B);
  std::map<std::string, std::int64_t, std::less<>> Env{{"N", 6}};
  I.forEachPoint(Env, [&](const std::vector<std::int64_t> &P) {
    EXPECT_TRUE(A.contains(P, Env));
    EXPECT_TRUE(B.contains(P, Env));
  });
  EXPECT_EQ(I.numPoints(Env), A.numPoints(Env) + B.numPoints(Env) -
                                  A.hull(B).numPoints(Env));
}

TEST(PolyEdgeCases, EmptyEnumerationAndCardinality) {
  BoxSet Empty({Dim{"x", AffineExpr(3), AffineExpr(1)}});
  int Count = 0;
  Empty.forEachPoint({}, [&](const std::vector<std::int64_t> &) {
    ++Count;
  });
  EXPECT_EQ(Count, 0);
  EXPECT_EQ(Empty.numPoints({}), 0);
  // Symbolic cardinality of an empty constant box is negative — callers
  // guard with isProvablyEmpty, which reports it.
  EXPECT_TRUE(Empty.isProvablyEmpty());
}

TEST(PolyEdgeCases, ZeroDimensionalBox) {
  BoxSet Point(std::vector<Dim>{});
  EXPECT_EQ(Point.rank(), 0u);
  EXPECT_EQ(Point.cardinality().toString(), "1");
  int Count = 0;
  Point.forEachPoint({}, [&](const std::vector<std::int64_t> &P) {
    EXPECT_TRUE(P.empty());
    ++Count;
  });
  EXPECT_EQ(Count, 1);
}

TEST(PolyEdgeCases, TranslationRoundTripOnPoints) {
  IntegerMap T = IntegerMap::translation({"y", "x"}, {5, -3});
  IntegerMap Inv = T.inverse();
  for (std::int64_t Y : {-2, 0, 7})
    for (std::int64_t X : {-1, 0, 4}) {
      auto Image = T.apply({Y, X}, {});
      EXPECT_EQ(Inv.apply(Image, {}), (std::vector<std::int64_t>{Y, X}));
    }
}
