//===- tests/common/RandomChain.h - Random loop chain generator -*- C++ -*-===//
//
// Test-only helper: generates random but well-formed loop chains for
// property testing. Well-formed means every read of a temporary lies
// inside its producer's write footprint (true dataflow), which the
// generator guarantees with trapezoidal domains: nest k's domain is
// expanded by (numNests - k) cells on every side, and temporaries are
// read at offsets of at most one, so each consumer's footprint sits
// strictly inside its producer's.
//
//===----------------------------------------------------------------------===//

#ifndef LCDFG_TESTS_COMMON_RANDOMCHAIN_H
#define LCDFG_TESTS_COMMON_RANDOMCHAIN_H

#include "codegen/Interpreter.h"
#include "ir/LoopChain.h"

#include <cstdint>
#include <random>
#include <set>

namespace lcdfg {
namespace testutil {

struct RandomChainOptions {
  unsigned Rank = 2;        // 1..3
  unsigned NumNests = 6;    // chain length
  unsigned NumInputs = 2;   // persistent input arrays
  unsigned MaxReads = 3;    // accesses per nest
  unsigned MaxPoints = 3;   // stencil points per access
  std::uint64_t Seed = 1;
};

/// Dimension names by loop order for the given rank.
inline std::vector<std::string> dimNames(unsigned Rank) {
  static const char *Names3[] = {"z", "y", "x"};
  std::vector<std::string> Names;
  for (unsigned D = 3 - Rank; D < 3; ++D)
    Names.emplace_back(Names3[D]);
  return Names;
}

inline ir::LoopChain randomChain(const RandomChainOptions &Options) {
  std::mt19937_64 Rng(Options.Seed);
  auto Pick = [&](int Lo, int Hi) {
    return static_cast<int>(Lo + Rng() % (Hi - Lo + 1));
  };

  ir::LoopChain Chain("random" + std::to_string(Options.Seed), "fuse");
  poly::AffineExpr N = poly::AffineExpr::var("N");
  std::vector<std::string> Dims = dimNames(Options.Rank);

  auto DomainFor = [&](unsigned NestIdx) {
    std::int64_t Expand =
        static_cast<std::int64_t>(Options.NumNests - NestIdx);
    std::vector<poly::Dim> Bounds;
    for (const std::string &Name : Dims)
      Bounds.push_back(poly::Dim{Name, poly::AffineExpr(-Expand),
                                 N - poly::AffineExpr(1 - Expand)});
    return poly::BoxSet(std::move(Bounds));
  };

  std::vector<std::string> Sources;
  for (unsigned I = 0; I < Options.NumInputs; ++I)
    Sources.push_back("in" + std::to_string(I));

  for (unsigned K = 0; K < Options.NumNests; ++K) {
    ir::LoopNest Nest;
    Nest.Name = "S" + std::to_string(K);
    Nest.Domain = DomainFor(K);
    Nest.Write =
        ir::Access{"tmp" + std::to_string(K),
                   {std::vector<std::int64_t>(Options.Rank, 0)}};

    unsigned NumReads = 1 + Rng() % Options.MaxReads;
    std::set<std::string> Used;
    for (unsigned R = 0; R < NumReads; ++R) {
      const std::string &Array =
          Sources[Rng() % Sources.size()];
      if (!Used.insert(Array).second)
        continue; // one access per array per nest
      bool IsInput = Array.rfind("in", 0) == 0;
      int Span = IsInput ? 2 : 1;
      ir::Access A;
      A.Array = Array;
      unsigned NumPoints = 1 + Rng() % Options.MaxPoints;
      std::set<std::vector<std::int64_t>> Points;
      for (unsigned P = 0; P < NumPoints; ++P) {
        std::vector<std::int64_t> Off(Options.Rank);
        for (unsigned D = 0; D < Options.Rank; ++D)
          Off[D] = Pick(-Span, Span);
        Points.insert(std::move(Off));
      }
      A.Offsets.assign(Points.begin(), Points.end());
      Nest.Reads.push_back(std::move(A));
    }
    Chain.addNest(std::move(Nest));
    Sources.push_back("tmp" + std::to_string(K));
  }
  Chain.finalize();
  return Chain;
}

/// Registers one generic kernel per nest: a deterministic weighted sum of
/// the reads (plus a per-nest constant), so transformed executions are
/// bitwise comparable.
inline void registerGenericKernels(ir::LoopChain &Chain,
                                   codegen::KernelRegistry &Kernels) {
  for (unsigned I = 0; I < Chain.numNests(); ++I) {
    double Bias = 0.125 + 0.03125 * static_cast<double>(I);
    Chain.nest(I).KernelId =
        Kernels.add([Bias](const std::vector<double> &R, double) {
          double V = Bias;
          double W = 0.25;
          for (double X : R) {
            V += W * X;
            W *= 0.75;
          }
          return V;
        });
  }
}

} // namespace testutil
} // namespace lcdfg

#endif // LCDFG_TESTS_COMMON_RANDOMCHAIN_H
