//===- tests/obs/ObsHarness.h - Shared tracing-test fixtures ----*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
// Shared fixtures for the observability suites: a scope guard that leaves
// the process-wide tracer disabled and drained no matter how a test exits,
// and the fig1.lc lowering harness the conformance tests sweep (the same
// five configurations lcdfg-lint checks, located through the
// LCDFG_SOURCE_DIR compile definition).
//
//===----------------------------------------------------------------------===//

#ifndef LCDFG_TESTS_OBS_OBSHARNESS_H
#define LCDFG_TESTS_OBS_OBSHARNESS_H

#include "codegen/Generator.h"
#include "codegen/Interpreter.h"
#include "exec/ExecutionPlan.h"
#include "graph/AutoScheduler.h"
#include "graph/GraphBuilder.h"
#include "obs/Trace.h"
#include "parser/PragmaParser.h"
#include "parser/ScriptRunner.h"
#include "storage/ReuseDistance.h"
#include "storage/StorageMap.h"
#include "tiling/Tiling.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace lcdfg {
namespace obstest {

/// Arms the global tracer for one test and guarantees it is drained and
/// disabled afterwards, so a failing test cannot leak an enabled tracer
/// into the next one.
struct ScopedTracer {
  explicit ScopedTracer(std::size_t Capacity = obs::Tracer::DefaultCapacity) {
    obs::Tracer::global().enable(Capacity);
  }
  ~ScopedTracer() {
    (void)obs::Tracer::global().drain();
    obs::Tracer::global().disable();
  }
};

/// Batched form of the synthetic stand-in kernel assigned to parsed
/// chains (mirrors the lcdfg-opt/lcdfg-lint stand-in: sum of reads
/// accumulated into the target).
template <int Arity>
void batchedSum(double *W, const double *const *R, const std::int64_t *S,
                std::int64_t WS, std::int64_t N) {
  for (std::int64_t I = 0; I < N; ++I) {
    double Sum = W[I * WS];
    for (int J = 0; J < Arity; ++J)
      Sum += R[J][I * S[J]];
    W[I * WS] = Sum;
  }
}

inline codegen::BatchedKernel batchedSumForArity(std::size_t Arity) {
  static constexpr codegen::BatchedKernel Table[] = {
      batchedSum<0>, batchedSum<1>, batchedSum<2>, batchedSum<3>,
      batchedSum<4>, batchedSum<5>, batchedSum<6>, batchedSum<7>,
      batchedSum<8>};
  return Arity < sizeof(Table) / sizeof(Table[0]) ? Table[Arity] : nullptr;
}

/// One compiled fig1 lowering ready to run: the storage plan, a fresh
/// concrete store with seeded persistent inputs, and the execution plan.
struct Lowering {
  storage::StoragePlan SPlan;
  storage::ConcreteStorage Store;
  exec::ExecutionPlan Plan;
};

/// The five fig1.lc configurations lcdfg-lint sweeps, by name.
enum class Fig1Config {
  Original,
  ScriptReducedWiden1,
  ScriptReducedWiden2,
  AutoscheduleReduced,
  Tiled4,
};

inline const char *fig1ConfigName(Fig1Config C) {
  switch (C) {
  case Fig1Config::Original:
    return "original";
  case Fig1Config::ScriptReducedWiden1:
    return "script-reduced-widen1";
  case Fig1Config::ScriptReducedWiden2:
    return "script-reduced-widen2";
  case Fig1Config::AutoscheduleReduced:
    return "autoschedule-reduced";
  case Fig1Config::Tiled4:
    return "tiled4";
  }
  return "?";
}

/// Loads examples/chains/fig1.lc (+ .script) once and lowers it on demand
/// into any of the lint-swept configurations.
class Fig1Harness {
public:
  ir::LoopChain Chain;
  codegen::KernelRegistry Kernels;
  exec::ParamEnv Env;
  std::string Script;

  explicit Fig1Harness(std::int64_t SizeN = 8) : Env{{"N", SizeN}} {
    const std::string Dir = LCDFG_SOURCE_DIR "/examples/chains/";
    std::string Source = readAll(Dir + "fig1.lc");
    parser::ParseResult Parsed = parser::parseLoopChain(Source);
    if (!Parsed)
      throw std::runtime_error("fig1.lc: " + Parsed.Error);
    Chain = std::move(*Parsed.Chain);
    Script = readAll(Dir + "fig1.script");
    assignSyntheticKernels();
  }

  /// Builds the configuration's graph, storage, and plan, seeding the
  /// persistent inputs with lcdfg-opt's deterministic pattern.
  Lowering lower(Fig1Config Config) {
    unsigned Widen = Config == Fig1Config::ScriptReducedWiden2 ? 2u : 1u;
    graph::Graph G = graph::buildGraph(Chain);
    switch (Config) {
    case Fig1Config::Original:
      break;
    case Fig1Config::ScriptReducedWiden1:
    case Fig1Config::ScriptReducedWiden2: {
      parser::ScriptResult R = parser::runScript(G, Script);
      if (!R)
        throw std::runtime_error("fig1.script: " + R.Error);
      storage::reduceStorage(G);
      break;
    }
    case Fig1Config::AutoscheduleReduced:
      (void)graph::autoSchedule(G, {});
      storage::reduceStorage(G);
      break;
    case Fig1Config::Tiled4:
      return lowerTiled(G, 4);
    }
    storage::StoragePlan SP =
        storage::StoragePlan::build(G, /*UseAllocation=*/true, Widen);
    storage::ConcreteStorage Store(SP, Env);
    seedInputs(Store);
    codegen::AstPtr Ast = codegen::generate(G);
    exec::ExecutionPlan Plan =
        exec::ExecutionPlan::fromAst(G, *Ast, Store, Env);
    return {std::move(SP), std::move(Store), std::move(Plan)};
  }

  void seedInputs(storage::ConcreteStorage &Store) {
    for (const std::string &Name : Chain.arrayNames())
      if (Chain.array(Name).Kind == ir::StorageKind::PersistentInput) {
        std::vector<double> &Buf = Store.spaceOf(Name);
        for (std::size_t I = 0; I < Buf.size(); ++I)
          Buf[I] = 0.001 * static_cast<double>((I * 2654435761u) % 1000u);
      }
  }

private:
  static std::string readAll(const std::string &Path) {
    std::ifstream In(Path);
    if (!In)
      throw std::runtime_error("cannot read " + Path);
    std::ostringstream SS;
    SS << In.rdbuf();
    return SS.str();
  }

  Lowering lowerTiled(graph::Graph &G, std::int64_t TileSize) {
    const ir::LoopNest &Last = Chain.nest(Chain.numNests() - 1);
    std::vector<std::int64_t> Sizes(Last.Domain.rank(), TileSize);
    tiling::ChainTiling Tiling = tiling::overlappedTiling(Chain, Sizes, Env);
    storage::StoragePlan SP =
        storage::StoragePlan::build(G, /*UseAllocation=*/false);
    storage::ConcreteStorage Store(SP, Env);
    seedInputs(Store);
    exec::ExecutionPlan Plan =
        exec::ExecutionPlan::fromTiling(Chain, Tiling, Store, Env, &G);
    return {std::move(SP), std::move(Store), std::move(Plan)};
  }

  void assignSyntheticKernels() {
    std::map<std::size_t, int> ByArity;
    for (unsigned N = 0; N < Chain.numNests(); ++N) {
      if (Chain.nest(N).KernelId >= 0)
        continue;
      std::size_t Arity = 0;
      for (const ir::Access &A : Chain.nest(N).Reads)
        Arity += A.Offsets.size();
      auto It = ByArity.find(Arity);
      if (It == ByArity.end()) {
        int Id = Kernels.add(
            [](const std::vector<double> &Reads, double Current) {
              double Sum = Current;
              for (double R : Reads)
                Sum += R;
              return Sum;
            },
            batchedSumForArity(Arity));
        It = ByArity.emplace(Arity, Id).first;
      }
      Chain.nest(N).KernelId = It->second;
    }
  }
};

} // namespace obstest
} // namespace lcdfg

#endif // LCDFG_TESTS_OBS_OBSHARNESS_H
