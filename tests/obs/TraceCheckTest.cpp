//===- tests/obs/TraceCheckTest.cpp ---------------------------------------===//
//
// The trace-vs-plan conformance validator under mutation: a clean traced
// run passes, and each single corruption of the trace (deleted span,
// duplicated span, reversed timestamps, reversed dependent pair, worker
// overlap, ring drops) is reported with exactly one diagnostic carrying
// its stable T00x check id — the staged design must not cascade.
//
//===----------------------------------------------------------------------===//

#include "obs/TraceCheck.h"

#include "ObsHarness.h"
#include "exec/PlanRunner.h"
#include "minifluxdiv/Spec.h"
#include "obs/Trace.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace lcdfg;
using namespace lcdfg::exec;
using namespace lcdfg::obs;
using lcdfg::obstest::ScopedTracer;

namespace {

/// MiniFluxDiv 2D harness: enough independent direction nests to give the
/// task graph real wavefront parallelism (and so real dependence edges
/// for the mutations to violate).
struct Fixture {
  codegen::KernelRegistry Kernels;
  ir::LoopChain Chain;
  ParamEnv Env{{"N", 6}};
  storage::StoragePlan SPlan;
  storage::ConcreteStorage Store;
  ExecutionPlan Plan;

  // Kernels must be registered before the plan is compiled (fromChain
  // bakes the nests' kernel ids into the statement records).
  static ir::LoopChain makeChain(codegen::KernelRegistry &Kernels) {
    ir::LoopChain C = mfd::buildChain2D();
    mfd::registerKernels(C, Kernels);
    return C;
  }

  Fixture()
      : Chain(makeChain(Kernels)),
        SPlan(storage::StoragePlan::build(graph::buildGraph(Chain),
                                          /*UseAllocation=*/false)),
        Store(SPlan, Env),
        Plan(ExecutionPlan::fromChain(Chain, Store, Env,
                                      /*G=*/nullptr)) {
    for (const std::string &Name : Chain.arrayNames()) {
      if (Chain.array(Name).Kind != ir::StorageKind::PersistentInput)
        continue;
      Chain.array(Name).Extent->forEachPoint(
          Env, [&](const std::vector<std::int64_t> &P) {
            double V = 1.0;
            for (std::size_t D = 0; D < P.size(); ++D)
              V += 0.001 * static_cast<double>((D + 3) * P[D]);
            Store.at(Name, P) = V;
          });
    }
  }

  /// One traced execution at two threads, drained.
  Trace tracedRun() {
    ScopedTracer Scope;
    RunOptions O;
    O.Threads = 2;
    runPlan(Plan, Kernels, Store, O);
    return obs::Tracer::global().drain();
  }
};

/// Restores the sorted-by-start-time invariant drain() guarantees (the
/// mutations move timestamps around).
void resort(Trace &T) {
  std::stable_sort(T.Spans.begin(), T.Spans.end(),
                   [](const TraceSpan &A, const TraceSpan &B) {
                     return A.T0 != B.T0 ? A.T0 < B.T0 : A.T1 < B.T1;
                   });
}

std::size_t findTaskSpan(const Trace &T, int Task) {
  for (std::size_t S = 0; S < T.Spans.size(); ++S)
    if (T.Spans[S].Kind == SpanKind::Task && T.Spans[S].Task == Task)
      return S;
  ADD_FAILURE() << "no span for task " << Task;
  return 0;
}

/// Asserts the diagnostics contain exactly one error and it carries
/// \p CheckId.
void expectSingle(const verify::Diagnostics &Diags,
                  const std::string &CheckId) {
  ASSERT_EQ(Diags.all().size(), 1u) << Diags.toString();
  EXPECT_EQ(Diags.all()[0].CheckId, CheckId) << Diags.toString();
  EXPECT_TRUE(Diags.hasErrors());
}

} // namespace

TEST(TraceCheck, CleanTracedRunPasses) {
  Fixture F;
  Trace T = F.tracedRun();
  ASSERT_GE(F.Plan.Tasks.size(), 4u);
  verify::Diagnostics Diags = checkTrace(F.Plan, T);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.toString();
  EXPECT_TRUE(Diags.all().empty()) << Diags.toString();
}

TEST(TraceCheck, DeletedSpanYieldsOneMissingDiagnostic) {
  Fixture F;
  Trace T = F.tracedRun();
  std::size_t Victim = findTaskSpan(T, 0);
  T.Spans.erase(T.Spans.begin() + static_cast<std::ptrdiff_t>(Victim));
  verify::Diagnostics Diags = checkTrace(F.Plan, T);
  expectSingle(Diags, CheckMissingSpan);
  EXPECT_EQ(Diags.all()[0].Task, 0);
}

TEST(TraceCheck, DuplicatedSpanYieldsOneDuplicateDiagnostic) {
  Fixture F;
  Trace T = F.tracedRun();
  TraceSpan Copy = T.Spans[findTaskSpan(T, 1)];
  Copy.T0 += 1;
  Copy.T1 = std::max(Copy.T1, Copy.T0);
  T.Spans.push_back(Copy);
  resort(T);
  verify::Diagnostics Diags = checkTrace(F.Plan, T);
  expectSingle(Diags, CheckDuplicateSpan);
  EXPECT_EQ(Diags.all()[0].Task, 1);
}

TEST(TraceCheck, ReversedTimestampsYieldOneReversedDiagnostic) {
  Fixture F;
  Trace T = F.tracedRun();
  // Any task span with a nonzero duration to flip.
  std::size_t Victim = T.Spans.size();
  for (std::size_t S = 0; S < T.Spans.size(); ++S)
    if (T.Spans[S].Kind == SpanKind::Task && T.Spans[S].T1 > T.Spans[S].T0) {
      Victim = S;
      break;
    }
  ASSERT_LT(Victim, T.Spans.size()) << "no task span with positive duration";
  std::swap(T.Spans[Victim].T0, T.Spans[Victim].T1);
  resort(T);
  expectSingle(checkTrace(F.Plan, T), CheckReversedSpan);
}

TEST(TraceCheck, ReversedDependentPairYieldsOneOrderDiagnostic) {
  Fixture F;
  Trace T = F.tracedRun();
  // A direct dependence edge I -> J straight off the plan.
  int I = -1, J = -1;
  for (std::size_t K = 0; K < F.Plan.Tasks.size() && I < 0; ++K)
    if (!F.Plan.Tasks[K].Deps.empty()) {
      J = static_cast<int>(K);
      I = F.Plan.Tasks[K].Deps.front();
    }
  ASSERT_GE(I, 0) << "plan has no dependence edges";

  // Move the consumer's span entirely before its producer, onto a fresh
  // worker so no same-worker overlap masks the ordering violation.
  TraceSpan &SJ = T.Spans[findTaskSpan(T, J)];
  const TraceSpan SI = T.Spans[findTaskSpan(T, I)];
  std::int32_t MaxWorker = 0;
  for (const TraceSpan &S : T.Spans)
    MaxWorker = std::max(MaxWorker, S.Worker);
  SJ.Worker = MaxWorker + 1;
  SJ.T0 = SI.T0 - 20;
  SJ.T1 = SI.T0 - 10;
  resort(T);

  verify::Diagnostics Diags = checkTrace(F.Plan, T);
  expectSingle(Diags, CheckDependenceOrder);
  EXPECT_EQ(Diags.all()[0].Task, J);
}

TEST(TraceCheck, SameWorkerOverlapYieldsOneOverlapDiagnostic) {
  Fixture F;
  Trace T = F.tracedRun();
  std::size_t A = findTaskSpan(T, 0);
  ASSERT_GT(T.Spans[A].T1, T.Spans[A].T0) << "zero-duration task span";
  std::size_t B = findTaskSpan(T, 1);
  T.Spans[B].Worker = T.Spans[A].Worker;
  T.Spans[B].T0 = T.Spans[A].T0;
  T.Spans[B].T1 = T.Spans[A].T1;
  resort(T);
  expectSingle(checkTrace(F.Plan, T), CheckWorkerOverlap);
}

TEST(TraceCheck, DroppedSpansRefuseTheTrace) {
  Fixture F;
  Trace T = F.tracedRun();
  T.Dropped = 7;
  verify::Diagnostics Diags = checkTrace(F.Plan, T);
  expectSingle(Diags, CheckDroppedSpans);
  EXPECT_NE(Diags.all()[0].Message.find("7"), std::string::npos);
}

TEST(TraceCheck, MissingWorkerIdIsAnOverlapError) {
  Fixture F;
  Trace T = F.tracedRun();
  T.Spans[findTaskSpan(T, 0)].Worker = -1;
  expectSingle(checkTrace(F.Plan, T), CheckWorkerOverlap);
}

TEST(TraceCheck, SerialTraceAlsoConforms) {
  Fixture F;
  ScopedTracer Scope;
  RunOptions O;
  O.Threads = 1;
  runPlan(F.Plan, F.Kernels, F.Store, O);
  Trace T = obs::Tracer::global().drain();
  verify::Diagnostics Diags = checkTrace(F.Plan, T);
  EXPECT_TRUE(Diags.all().empty()) << Diags.toString();
}
