//===- tests/obs/TraceConformanceTest.cpp ---------------------------------===//
//
// Trace-driven conformance over the example corpus: every fig1.lc
// lowering lcdfg-lint sweeps, executed at 1, 2, and 4 threads with the
// tracer armed. Each trace must pass obs::checkTrace against its plan's
// dependence closure, and the counter registry must agree with the
// PlanStats element-counting oracle: statement instances and raw loads
// are path-invariant (scalar stats run vs traced batched run), task
// counts equal the plan's task list, and the batched/scalar instruction
// split matches what RowPlan::analyze says about each instruction.
//
//===----------------------------------------------------------------------===//

#include "ObsHarness.h"

#include "exec/PlanRunner.h"
#include "exec/RowPlan.h"
#include "obs/Trace.h"
#include "obs/TraceCheck.h"

#include <gtest/gtest.h>

#include <cstdint>

using namespace lcdfg;
using namespace lcdfg::exec;
using namespace lcdfg::obs;
using lcdfg::obstest::Fig1Config;
using lcdfg::obstest::Fig1Harness;
using lcdfg::obstest::Lowering;
using lcdfg::obstest::ScopedTracer;
using lcdfg::obstest::fig1ConfigName;

namespace {

constexpr Fig1Config AllConfigs[] = {
    Fig1Config::Original,        Fig1Config::ScriptReducedWiden1,
    Fig1Config::ScriptReducedWiden2, Fig1Config::AutoscheduleReduced,
    Fig1Config::Tiled4,
};

struct Totals {
  std::int64_t Points = 0;
  std::int64_t RawReads = 0;
};

/// The element-counting oracle: a stats run (serialized, scalar) of a
/// fresh lowering of \p Config.
Totals oracleTotals(Fig1Harness &H, Fig1Config Config) {
  Lowering L = H.lower(Config);
  RunOptions O;
  O.CollectStats = true;
  PlanStats PS = runPlan(L.Plan, H.Kernels, L.Store, O);
  Totals T;
  for (const PlanStats::NodeStat &N : PS.Nodes) {
    T.Points += N.Points;
    T.RawReads += N.RawReads;
  }
  return T;
}

/// One traced execution of a fresh lowering; returns the drained trace
/// and (through \p PlanOut) the plan it ran, for checkTrace.
Trace tracedRun(Fig1Harness &H, Fig1Config Config, int Threads, bool Batched,
                ExecutionPlan &PlanOut) {
  Lowering L = H.lower(Config);
  ScopedTracer Scope;
  RunOptions O;
  O.Threads = Threads;
  O.Batched = Batched;
  runPlan(L.Plan, H.Kernels, L.Store, O);
  PlanOut = std::move(L.Plan);
  return Tracer::global().drain();
}

} // namespace

TEST(TraceConformance, EveryConfigEveryThreadCountPassesTraceCheck) {
  Fig1Harness H;
  for (Fig1Config Config : AllConfigs) {
    const Totals Oracle = oracleTotals(H, Config);
    for (int Threads : {1, 2, 4}) {
      SCOPED_TRACE(std::string(fig1ConfigName(Config)) + " threads=" +
                   std::to_string(Threads));
      ExecutionPlan Plan;
      Trace T = tracedRun(H, Config, Threads, /*Batched=*/true, Plan);

      verify::Diagnostics Diags = checkTrace(Plan, T);
      EXPECT_TRUE(Diags.all().empty()) << Diags.toString();

      // Counter registry vs the PlanStats oracle: statement instances and
      // operand loads are path-invariant, so the traced (batched,
      // parallel) run must count exactly what the scalar stats run did.
      EXPECT_EQ(T.counter(Counter::PointsExecuted), Oracle.Points);
      EXPECT_EQ(T.counter(Counter::RawReads), Oracle.RawReads);
      EXPECT_EQ(T.counter(Counter::BytesMoved),
                8 * (Oracle.Points + Oracle.RawReads));
      EXPECT_EQ(T.counter(Counter::TasksExecuted),
                static_cast<std::int64_t>(Plan.Tasks.size()));
      // One task span per plan task (checkTrace already asserts this; the
      // equality here pins the span/counter agreement).
      std::int64_t TaskSpans = 0;
      for (const TraceSpan &S : T.Spans)
        TaskSpans += S.Kind == SpanKind::Task;
      EXPECT_EQ(TaskSpans, static_cast<std::int64_t>(Plan.Tasks.size()));
    }
  }
}

TEST(TraceConformance, BatchedSplitMatchesRowPlanAnalyze) {
  Fig1Harness H;
  for (Fig1Config Config : AllConfigs) {
    SCOPED_TRACE(fig1ConfigName(Config));
    // What the row-batching compiler says about each task's instruction.
    std::int64_t ExpBatched = 0, ExpScalar = 0, ExpExternal = 0;
    {
      Lowering L = H.lower(Config);
      for (const PlanTask &PT : L.Plan.Tasks) {
        const NestInstr &I =
            L.Plan.Instrs[static_cast<std::size_t>(PT.Instr)];
        if (I.External)
          ++ExpExternal;
        else if (RowPlan::analyze(I, H.Kernels).Refusal == RowRefusal::None)
          ++ExpBatched;
        else
          ++ExpScalar;
      }
    }

    ExecutionPlan Plan;
    Trace T = tracedRun(H, Config, /*Threads=*/2, /*Batched=*/true, Plan);
    EXPECT_EQ(T.counter(Counter::BatchedInstrs), ExpBatched);
    EXPECT_EQ(T.counter(Counter::ScalarInstrs), ExpScalar);
    EXPECT_EQ(T.counter(Counter::ExternalTasks), ExpExternal);
    if (ExpBatched)
      EXPECT_GT(T.counter(Counter::BatchedSegments), 0);
    else
      EXPECT_EQ(T.counter(Counter::BatchedSegments), 0);

    // With batching off everything lands on the scalar interpreter.
    Trace TS = tracedRun(H, Config, /*Threads=*/2, /*Batched=*/false, Plan);
    EXPECT_EQ(TS.counter(Counter::BatchedInstrs), 0);
    EXPECT_EQ(TS.counter(Counter::BatchedSegments), 0);
    EXPECT_EQ(TS.counter(Counter::ScalarInstrs), ExpBatched + ExpScalar);
  }
}

TEST(TraceConformance, PlanStatsExposesPerWorkerTotals) {
  Fig1Harness H;
  // Stats run: serialized, so exactly one participant carries everything.
  {
    Lowering L = H.lower(Fig1Config::Original);
    RunOptions O;
    O.CollectStats = true;
    PlanStats PS = runPlan(L.Plan, H.Kernels, L.Store, O);
    ASSERT_EQ(PS.Workers.size(), 1u);
    std::int64_t Points = 0, Raw = 0;
    for (const PlanStats::NodeStat &N : PS.Nodes) {
      Points += N.Points;
      Raw += N.RawReads;
    }
    EXPECT_EQ(PS.Workers[0].Points, Points);
    EXPECT_EQ(PS.Workers[0].RawReads, Raw);
    EXPECT_EQ(PS.Workers[0].Tasks,
              static_cast<std::int64_t>(L.Plan.Tasks.size()));
  }
  // Parallel run: the per-worker shards partition the same totals.
  {
    Lowering L = H.lower(Fig1Config::Original);
    RunOptions O;
    O.Threads = 2;
    PlanStats PS = runPlan(L.Plan, H.Kernels, L.Store, O);
    ASSERT_GE(PS.Workers.size(), 1u);
    std::int64_t Tasks = 0;
    for (const PlanStats::WorkerStat &W : PS.Workers)
      Tasks += W.Tasks;
    EXPECT_EQ(Tasks, static_cast<std::int64_t>(L.Plan.Tasks.size()));
    // The breakdown reaches the human: per-worker rows in toString().
    if (PS.Workers.size() > 1) {
      EXPECT_NE(PS.toString().find("imbalance"), std::string::npos);
    }
  }
}
