//===- tests/obs/TraceTest.cpp --------------------------------------------===//
//
// Unit tests of the span tracer and counter registry: ring-buffer
// recording and drain semantics (sorting, wrap-around drops, per-worker
// buffers), the label intern table, counter merging, and the two export
// formats (Chrome trace_event JSON, compact text summary).
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include "ObsHarness.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>

using namespace lcdfg;
using namespace lcdfg::obs;
using lcdfg::obstest::ScopedTracer;

namespace {

TraceSpan makeSpan(std::int64_t T0, std::int64_t T1, std::int32_t Label = -1,
                   std::int32_t Task = -1, SpanKind Kind = SpanKind::Task) {
  TraceSpan S;
  S.T0 = T0;
  S.T1 = T1;
  S.Label = Label;
  S.Task = Task;
  S.Kind = Kind;
  return S;
}

} // namespace

TEST(Trace, CounterNamesAreStable) {
  EXPECT_EQ(counterName(Counter::PointsExecuted), "exec.points");
  EXPECT_EQ(counterName(Counter::RawReads), "exec.reads.raw");
  EXPECT_EQ(counterName(Counter::BytesMoved), "exec.bytes.moved");
  EXPECT_EQ(counterName(Counter::BatchedSegments), "exec.segments.batched");
  EXPECT_EQ(counterName(Counter::ModuloWraps), "exec.modulo.wraps");
  EXPECT_EQ(counterName(Counter::GhostExchanges), "rt.ghost.exchanges");
  EXPECT_EQ(counterName(Counter::RecoveryDescents), "recovery.descents");
  EXPECT_EQ(counterName(Counter::FaultsFired), "fault.fired");
  // Every enumerator short of the sentinel has a real name.
  for (std::size_t C = 0; C < NumCountersV; ++C)
    EXPECT_NE(counterName(static_cast<Counter>(C)), "unknown") << C;
}

TEST(Trace, DisabledTracerRecordsNothing) {
  Tracer &T = Tracer::global();
  ASSERT_FALSE(T.enabled());
  T.record(makeSpan(0, 1));
  T.add(Counter::PointsExecuted, 42);
  T.instant(SpanKind::Marker, -1);

  ScopedTracer Scope;
  Trace Tr = Tracer::global().drain();
  EXPECT_TRUE(Tr.Spans.empty());
  EXPECT_TRUE(Tr.WorkerCounters.empty());
  EXPECT_EQ(Tr.counter(Counter::PointsExecuted), 0);
}

TEST(Trace, RecordDrainRoundTrip) {
  ScopedTracer Scope;
  Tracer &T = Tracer::global();
  const std::int32_t A = T.intern("alpha");
  const std::int32_t B = T.intern("beta");
  // Out of start-time order: drain must sort.
  T.record(makeSpan(300, 400, B, 1));
  T.record(makeSpan(100, 200, A, 0));
  T.add(Counter::PointsExecuted, 5);
  T.add(Counter::PointsExecuted, 7);
  T.add(Counter::RawReads, 3);

  Trace Tr = T.drain();
  ASSERT_EQ(Tr.Spans.size(), 2u);
  EXPECT_EQ(Tr.Spans[0].T0, 100);
  EXPECT_EQ(Tr.Spans[1].T0, 300);
  EXPECT_EQ(Tr.label(Tr.Spans[0].Label), "alpha");
  EXPECT_EQ(Tr.label(Tr.Spans[1].Label), "beta");
  EXPECT_EQ(Tr.Spans[0].Worker, 0);
  ASSERT_EQ(Tr.WorkerCounters.size(), 1u);
  EXPECT_EQ(Tr.counter(Counter::PointsExecuted), 12);
  EXPECT_EQ(Tr.counter(Counter::RawReads), 3);
  EXPECT_EQ(Tr.Dropped, 0);

  // Drain cleared everything; the tracer stays enabled but a second drain
  // starts from an empty state.
  EXPECT_TRUE(T.enabled());
  Trace Again = T.drain();
  EXPECT_TRUE(Again.Spans.empty());
  EXPECT_TRUE(Again.WorkerCounters.empty());
}

TEST(Trace, LabelInternDeduplicates) {
  ScopedTracer Scope;
  Tracer &T = Tracer::global();
  const std::int32_t A1 = T.intern("same");
  const std::int32_t A2 = T.intern("same");
  const std::int32_t B = T.intern("other");
  EXPECT_EQ(A1, A2);
  EXPECT_NE(A1, B);
  Trace Tr = T.drain();
  EXPECT_EQ(Tr.label(A1), "same");
  EXPECT_EQ(Tr.label(B), "other");
  EXPECT_EQ(Tr.label(-1), "");
  EXPECT_EQ(Tr.label(99), "");
}

TEST(Trace, RingWrapKeepsNewestAndCountsDropped) {
  ScopedTracer Scope(/*Capacity=*/4);
  Tracer &T = Tracer::global();
  for (std::int64_t I = 0; I < 10; ++I)
    T.record(makeSpan(I, I + 1));

  Trace Tr = T.drain();
  ASSERT_EQ(Tr.Spans.size(), 4u);
  EXPECT_EQ(Tr.Dropped, 6);
  // The four newest spans survive, oldest-first.
  for (std::int64_t K = 0; K < 4; ++K)
    EXPECT_EQ(Tr.Spans[static_cast<std::size_t>(K)].T0, 6 + K);
}

TEST(Trace, InstantEventsHaveZeroDuration) {
  ScopedTracer Scope;
  Tracer &T = Tracer::global();
  T.instant(SpanKind::Marker, T.intern("descend:L002-worker-exception"), -1,
            -1, 3);
  Trace Tr = T.drain();
  ASSERT_EQ(Tr.Spans.size(), 1u);
  EXPECT_EQ(Tr.Spans[0].T0, Tr.Spans[0].T1);
  EXPECT_EQ(Tr.Spans[0].Kind, SpanKind::Marker);
  EXPECT_EQ(Tr.Spans[0].A0, 3);
}

TEST(Trace, ThreadsGetSeparateWorkerBuffers) {
  ScopedTracer Scope;
  Tracer &T = Tracer::global();
  auto Work = [&](std::int64_t Base) {
    T.record(makeSpan(Base, Base + 10));
    T.add(Counter::PointsExecuted, Base);
  };
  std::thread T1(Work, 100);
  std::thread T2(Work, 200);
  T1.join();
  T2.join();

  Trace Tr = T.drain();
  ASSERT_EQ(Tr.Spans.size(), 2u);
  ASSERT_EQ(Tr.WorkerCounters.size(), 2u);
  EXPECT_NE(Tr.Spans[0].Worker, Tr.Spans[1].Worker);
  EXPECT_EQ(Tr.counter(Counter::PointsExecuted), 300);
}

TEST(Trace, EnableStartsAFreshTrace) {
  ScopedTracer Scope;
  Tracer &T = Tracer::global();
  T.record(makeSpan(1, 2, T.intern("stale")));
  T.add(Counter::RawReads, 9);
  T.enable(); // re-arm: clears buffers, labels, counters
  Trace Tr = T.drain();
  EXPECT_TRUE(Tr.Spans.empty());
  EXPECT_TRUE(Tr.Labels.empty());
  EXPECT_EQ(Tr.counter(Counter::RawReads), 0);
}

TEST(Trace, ChromeJsonHasExpectedEventShapes) {
  ScopedTracer Scope;
  Tracer &T = Tracer::global();
  T.record(makeSpan(1000, 4000, T.intern("nest0"), 0));
  T.instant(SpanKind::Marker, T.intern("fault:kernel:throw"));
  T.add(Counter::PointsExecuted, 64);
  Trace Tr = T.drain();

  std::string Json = Tr.toChromeJson();
  EXPECT_NE(Json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"M\""), std::string::npos); // thread names
  EXPECT_NE(Json.find("\"ph\":\"X\""), std::string::npos); // duration span
  EXPECT_NE(Json.find("\"ph\":\"i\""), std::string::npos); // instant
  EXPECT_NE(Json.find("\"ph\":\"C\""), std::string::npos); // counter
  EXPECT_NE(Json.find("\"name\":\"nest0\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\":\"fault:kernel:throw\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\":\"exec.points\""), std::string::npos);
  EXPECT_NE(Json.find("\"value\":64"), std::string::npos);
  // 1000 ns span start = 1.000 us Chrome timestamp.
  EXPECT_NE(Json.find("\"ts\":1.000"), std::string::npos);
  EXPECT_NE(Json.find("\"dur\":3.000"), std::string::npos);
  // A complete trace carries no drop marker.
  EXPECT_EQ(Json.find("lcdfg_dropped_spans"), std::string::npos);

  Tr.Dropped = 5;
  EXPECT_NE(Tr.toChromeJson().find("\"lcdfg_dropped_spans\":5"),
            std::string::npos);
}

TEST(Trace, SummaryListsCountersAndImbalance) {
  // Hand-built trace: two workers, one twice as busy as the other.
  Trace Tr;
  Tr.WorkerCounters.resize(2);
  Tr.WorkerCounters[0][static_cast<std::size_t>(Counter::PointsExecuted)] = 10;
  Tr.WorkerCounters[1][static_cast<std::size_t>(Counter::PointsExecuted)] = 20;
  TraceSpan A = makeSpan(0, 1000);
  A.Worker = 0;
  TraceSpan B = makeSpan(0, 2000);
  B.Worker = 1;
  Tr.Spans = {A, B};

  std::string S = Tr.summary();
  EXPECT_NE(S.find("2 worker buffers"), std::string::npos);
  EXPECT_NE(S.find("exec.points"), std::string::npos);
  EXPECT_NE(S.find("30"), std::string::npos); // merged counter total
  EXPECT_NE(S.find("imbalance: max/min worker busy time 2.00x"),
            std::string::npos);
  EXPECT_EQ(S.find("dropped"), std::string::npos);

  Tr.Dropped = 3;
  EXPECT_NE(Tr.summary().find("3 dropped"), std::string::npos);
}
