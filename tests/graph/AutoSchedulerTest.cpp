//===- tests/graph/AutoSchedulerTest.cpp ----------------------------------===//

#include "graph/AutoScheduler.h"

#include "graph/CostModel.h"
#include "graph/GraphBuilder.h"
#include "minifluxdiv/Spec.h"
#include "storage/ReuseDistance.h"

#include <gtest/gtest.h>

using namespace lcdfg;
using namespace lcdfg::graph;

TEST(AutoScheduler, ImprovesMiniFluxDiv2D) {
  ir::LoopChain Chain = mfd::buildChain2D();
  Graph G = buildGraph(Chain);
  AutoScheduleResult R = autoSchedule(G);
  G.verify();
  EXPECT_GT(R.StepsApplied, 0u);
  EXPECT_TRUE(R.FinalRead.asymptoticallyLess(R.InitialRead));
  EXPECT_LE(R.FinalStreams, 4u);
  EXPECT_EQ(R.Log.size(), R.StepsApplied);
}

TEST(AutoScheduler, MatchesOrBeatsTheHandRecipe) {
  // The hand-derived fuse-all-levels schedule (Figure 9) is the paper's
  // best untiled variant; the greedy search should reach at least its
  // S_R at the evaluation size.
  ir::LoopChain C1 = mfd::buildChain2D();
  Graph Hand = buildGraph(C1);
  mfd::applyFuseAllLevels(Hand);
  storage::reduceStorage(Hand);
  std::int64_t HandCost = computeCost(Hand).TotalRead.evaluate(64);

  ir::LoopChain C2 = mfd::buildChain2D();
  Graph Auto = buildGraph(C2);
  AutoScheduleResult R = autoSchedule(Auto);
  EXPECT_LE(R.FinalRead.evaluate(64), HandCost)
      << "auto log:\n"
      << [&] {
           std::string S;
           for (const std::string &L : R.Log)
             S += L + "\n";
           return S;
         }();
}

TEST(AutoScheduler, RespectsStreamBudget) {
  ir::LoopChain Chain = mfd::buildChain2D();
  Graph G = buildGraph(Chain);
  AutoScheduleOptions Options;
  Options.MaxStreams = 2;
  AutoScheduleResult R = autoSchedule(G, Options);
  EXPECT_LE(R.FinalStreams, 2u);
}

TEST(AutoScheduler, ProducerConsumerOnlyStillImproves) {
  ir::LoopChain Chain = mfd::buildChain2D();
  Graph G = buildGraph(Chain);
  AutoScheduleOptions Options;
  Options.AllowReadReduction = false;
  AutoScheduleResult R = autoSchedule(G, Options);
  EXPECT_GT(R.StepsApplied, 0u);
  EXPECT_TRUE(R.FinalRead.asymptoticallyLess(R.InitialRead));
  // Without read reduction the inputs are still streamed twice.
  Polynomial FinalRow0;
  CostReport Cost = computeCost(G);
  EXPECT_EQ(Cost.RowRead.at(0).toString(), "8N^2+32N");
}

TEST(AutoScheduler, StepBoundIsHonored) {
  ir::LoopChain Chain = mfd::buildChain2D();
  Graph G = buildGraph(Chain);
  AutoScheduleOptions Options;
  Options.MaxSteps = 1;
  AutoScheduleResult R = autoSchedule(G, Options);
  EXPECT_LE(R.StepsApplied, 1u);
}

TEST(AutoScheduler, NoProfitableMoveIsANoOp) {
  // A chain with a single nest has nothing to fuse.
  ir::LoopChain Chain("single");
  poly::AffineExpr N = poly::AffineExpr::var("N");
  ir::LoopNest Nest;
  Nest.Name = "only";
  Nest.Domain = poly::BoxSet(
      {poly::Dim{"x", poly::AffineExpr(0), N - poly::AffineExpr(1)}});
  Nest.Write = ir::Access{"out", {{0}}};
  Nest.Reads = {ir::Access{"in", {{0}}}};
  Chain.addNest(Nest);
  Chain.finalize();
  Graph G = buildGraph(Chain);
  AutoScheduleResult R = autoSchedule(G);
  EXPECT_EQ(R.StepsApplied, 0u);
  EXPECT_EQ(R.InitialRead, R.FinalRead);
}

TEST(AutoScheduler, WorksOn3D) {
  ir::LoopChain Chain = mfd::buildChain3D();
  Graph G = buildGraph(Chain);
  AutoScheduleResult R = autoSchedule(G);
  G.verify();
  EXPECT_TRUE(R.FinalRead.asymptoticallyLess(R.InitialRead));
}
