//===- tests/graph/FigureCostsTest.cpp ------------------------------------===//
//
// Reproduces the cost-model figures of the paper (Figures 3, 7, 8, 9) for
// the 2D MiniFluxDiv graphs. Our mechanical model matches the paper's
// per-row structure; where the paper's printed totals disagree with its own
// row sums (see EXPERIMENTS.md) we assert our exact values and the
// preserved ordering.
//
//===----------------------------------------------------------------------===//

#include "graph/CostModel.h"
#include "graph/GraphBuilder.h"
#include "graph/Transforms.h"
#include "minifluxdiv/Spec.h"
#include "storage/ReuseDistance.h"

#include <gtest/gtest.h>

using namespace lcdfg;
using namespace lcdfg::graph;

namespace {

struct Fixture {
  ir::LoopChain Chain;
  Graph G;
  Fixture() : Chain(mfd::buildChain2D()), G(buildGraph(Chain)) {}
};

} // namespace

TEST(FigureCosts, Figure3SeriesOfLoops) {
  Fixture F;
  CostReport Cost = computeCost(F.G);
  EXPECT_EQ(Cost.TotalRead.toString(), "30N^2+54N");
  EXPECT_EQ(Cost.MaxStreams, 2u);
}

TEST(FigureCosts, Figure7FuseAmongDirections) {
  Fixture F;
  mfd::applyFuseAmongDirections(F.G);
  F.G.verify();
  CostReport Cost = computeCost(F.G);
  // Row 0: every input streamed once -> 4*(N^2+4N).
  EXPECT_EQ(Cost.RowRead.at(0).toString(), "4N^2+16N");
  // Row 1: the fourteen partial-flux edges of Figure 7.
  EXPECT_EQ(Cost.RowRead.at(1).toString(), "14N^2+14N");
  // Row 2: eight complete-flux value sets streamed once each.
  EXPECT_EQ(Cost.RowRead.at(2).toString(), "8N^2+8N");
  EXPECT_EQ(Cost.TotalRead.toString(), "26N^2+38N");
  EXPECT_EQ(Cost.MaxStreams, 2u);
}

TEST(FigureCosts, Figure8FuseWithinDirections) {
  Fixture F;
  mfd::applyFuseWithinDirections(F.G);
  storage::reduceStorage(F.G);
  CostReport Cost = computeCost(F.G);
  // Row 0: inputs read by both directions -> 8*(N^2+4N).
  EXPECT_EQ(Cost.RowRead.at(0).toString(), "8N^2+32N");
  // Velocity partial-flux rows: 4*(N^2+N) each (Figure 8).
  EXPECT_EQ(Cost.RowRead.at(1).toString(), "4N^2+4N");
  EXPECT_EQ(Cost.RowRead.at(3).toString(), "4N^2+4N");
  // Fused x row internals: 3 scalars + 4 two-element buffers = 11
  // (Figure 8's "11").
  EXPECT_EQ(Cost.RowRead.at(2).toString(), "11");
  // Fused y row internals: 3 scalars + 4 (N+1)-buffers = 4N+7 (the paper
  // prints 4N+3; see EXPERIMENTS.md).
  EXPECT_EQ(Cost.RowRead.at(4).toString(), "4N+7");
  EXPECT_EQ(Cost.TotalRead.toString(), "16N^2+44N+18");
  EXPECT_EQ(Cost.MaxStreams, 2u);
}

TEST(FigureCosts, Figure9FuseAllLevels) {
  Fixture F;
  mfd::applyFuseAllLevels(F.G);
  storage::reduceStorage(F.G);
  CostReport Cost = computeCost(F.G);
  // Row 0: 6 input streams (velocities twice) -> 6*(N^2+4N), Figure 9.
  EXPECT_EQ(Cost.RowRead.at(0).toString(), "6N^2+24N");
  // Row 1: both velocity fluxes feed four statement sets each ->
  // 8*(N^2+N), Figure 9.
  EXPECT_EQ(Cost.RowRead.at(1).toString(), "8N^2+8N");
  // Row 2: internals 4N+22 — the y-direction buffers span a row of the
  // *merged* iteration space (length N+2 each); the paper prints 4N+11
  // (see EXPERIMENTS.md).
  EXPECT_EQ(Cost.RowRead.at(2).toString(), "4N+22");
  EXPECT_EQ(Cost.TotalRead.toString(), "14N^2+36N+22");
  EXPECT_EQ(Cost.MaxStreams, 2u);
}

TEST(FigureCosts, VariantOrderingMatchesPaper) {
  // S_R(series) > S_R(fuse among) > S_R(fuse within) > S_R(fuse all) — the
  // ordering that drives the performance ranking for large boxes.
  Fixture Series;
  Fixture Among;
  mfd::applyFuseAmongDirections(Among.G);
  Fixture Within;
  mfd::applyFuseWithinDirections(Within.G);
  storage::reduceStorage(Within.G);
  Fixture All;
  mfd::applyFuseAllLevels(All.G);
  storage::reduceStorage(All.G);

  Polynomial SSeries = computeCost(Series.G).TotalRead;
  Polynomial SAmong = computeCost(Among.G).TotalRead;
  Polynomial SWithin = computeCost(Within.G).TotalRead;
  Polynomial SAll = computeCost(All.G).TotalRead;

  EXPECT_TRUE(SAmong.asymptoticallyLess(SSeries));
  EXPECT_TRUE(SWithin.asymptoticallyLess(SAmong));
  EXPECT_TRUE(SAll.asymptoticallyLess(SWithin));
  // Also pointwise at the paper's box sizes.
  for (std::int64_t N : {16, 128}) {
    EXPECT_GT(SSeries.evaluate(N), SAmong.evaluate(N));
    EXPECT_GT(SAmong.evaluate(N), SWithin.evaluate(N));
    EXPECT_GT(SWithin.evaluate(N), SAll.evaluate(N));
  }
}

TEST(FigureCosts, StorageReductionDrivesTheGap) {
  // Without storage reduction the fused-within schedule reads as much as
  // the series schedule: the fusion alone does not shrink S_R; the
  // reuse-distance mapping does (Section 5.3's message).
  Fixture F;
  mfd::applyFuseWithinDirections(F.G);
  CostReport Before = computeCost(F.G);
  EXPECT_EQ(Before.TotalRead.toString(), "30N^2+54N");
  storage::reduceStorage(F.G);
  CostReport After = computeCost(F.G);
  EXPECT_EQ(After.TotalRead.toString(), "16N^2+44N+18");
}
