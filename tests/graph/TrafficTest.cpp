//===- tests/graph/TrafficTest.cpp ----------------------------------------===//
//
// Validates the S_R cost model against exact distinct-element traffic.
//
//===----------------------------------------------------------------------===//

#include "graph/Traffic.h"

#include "graph/CostModel.h"
#include "graph/GraphBuilder.h"
#include "minifluxdiv/Spec.h"
#include "pipelines/UnsharpMask.h"
#include "storage/ReuseDistance.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace lcdfg;
using namespace lcdfg::graph;

TEST(Traffic, SeriesScheduleModelIsExact) {
  // For the series-of-loops schedule every value-set size equals its
  // consumers' footprints, so S_R equals the measured traffic exactly.
  ir::LoopChain Chain = mfd::buildChain2D();
  Graph G = buildGraph(Chain);
  TrafficReport R = measureTraffic(G, 8);
  EXPECT_EQ(R.Total, R.ModelTotal);
  EXPECT_DOUBLE_EQ(R.modelAccuracy(), 1.0);
  // Spot-check an edge: the x-velocity flux feeds four complete-flux
  // statement sets, each reading (N+1)*N distinct elements.
  EXPECT_EQ((R.EdgeReads.at({"F1x_u", "Fx2_rho"})), 9 * 8);
}

TEST(Traffic, ReadReductionCollapsesStreams) {
  ir::LoopChain Chain = mfd::buildChain2D();
  Graph Series = buildGraph(Chain);
  TrafficReport Before = measureTraffic(Series, 8);

  ir::LoopChain Chain2 = mfd::buildChain2D();
  Graph Among = buildGraph(Chain2);
  mfd::applyFuseAmongDirections(Among);
  TrafficReport After = measureTraffic(Among, 8);

  // Fusing the partial-flux reads means the inputs stream once: measured
  // traffic drops.
  EXPECT_LT(After.Total, Before.Total);
  // The model slightly undercounts the fused input streams (it keeps the
  // per-direction footprint label while the union is larger): accuracy
  // stays within 15% here.
  EXPECT_GT(After.modelAccuracy(), 0.85);
  EXPECT_LT(After.modelAccuracy(), 1.01);
}

TEST(Traffic, ReducedStorageModelsBufferReads) {
  // After storage reduction S_R counts reads of the (tiny) buffers while
  // the exact enumeration still counts element touches: the model total
  // is far below the unfused traffic — the point of the optimization.
  ir::LoopChain Chain = mfd::buildChain2D();
  Graph G = buildGraph(Chain);
  mfd::applyFuseAllLevels(G);
  storage::reduceStorage(G);
  TrafficReport R = measureTraffic(G, 8);
  EXPECT_LT(R.ModelTotal, R.Total);
  Graph Series = buildGraph(Chain);
  EXPECT_LT(R.ModelTotal, measureTraffic(Series, 8).ModelTotal);
}

TEST(Traffic, ModelAccuracyAgainstZeroGroundTruth) {
  // A report with no measured traffic is only "exact" when the model also
  // predicts zero; a nonzero prediction must read as infinitely wrong,
  // not silently accurate.
  TrafficReport Empty;
  EXPECT_DOUBLE_EQ(Empty.modelAccuracy(), 1.0);

  TrafficReport Phantom;
  Phantom.ModelTotal = 42;
  EXPECT_TRUE(std::isinf(Phantom.modelAccuracy()));
  EXPECT_GT(Phantom.modelAccuracy(), 0.0);
}

TEST(Traffic, UnsharpPipeline) {
  ir::LoopChain Chain = pipelines::buildUnsharpChain();
  Graph G = buildGraph(Chain);
  TrafficReport R = measureTraffic(G, 8);
  EXPECT_GT(R.Total, 0);
  // blury is read by both sharpen and mask.
  EXPECT_EQ(R.EdgeReads.count({"blury", "sharpen"}), 1u);
  EXPECT_EQ(R.EdgeReads.count({"blury", "mask"}), 1u);
}
