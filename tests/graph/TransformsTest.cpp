//===- tests/graph/TransformsTest.cpp -------------------------------------===//

#include "graph/Transforms.h"

#include "graph/CostModel.h"
#include "graph/GraphBuilder.h"
#include "minifluxdiv/Spec.h"

#include <gtest/gtest.h>

using namespace lcdfg;
using namespace lcdfg::graph;

namespace {

struct MfdGraph {
  ir::LoopChain Chain;
  Graph G;
  MfdGraph() : Chain(mfd::buildChain2D()), G(buildGraph(Chain)) {}
  NodeId stmt(const char *Label) { return G.findStmt(Label); }
};

} // namespace

TEST(Transforms, RescheduleMovesNode) {
  MfdGraph M;
  NodeId Fy1V = M.stmt("Fy1_v");
  ASSERT_NE(Fy1V, InvalidNode);
  EXPECT_EQ(M.G.stmt(Fy1V).Row, 4);
  TransformResult R = reschedule(M.G, Fy1V, 1);
  ASSERT_TRUE(R) << R.Error;
  EXPECT_EQ(M.G.stmt(Fy1V).Row, 1);
}

TEST(Transforms, RescheduleRejectsBeforeProducer) {
  MfdGraph M;
  // Fx2_rho reads F1x_rho produced in row 1; row 1 is too early.
  TransformResult R = reschedule(M.G, M.stmt("Fx2_rho"), 1);
  EXPECT_FALSE(R);
  EXPECT_NE(R.Error.find("producer"), std::string::npos);
}

TEST(Transforms, RescheduleRejectsAfterConsumer) {
  MfdGraph M;
  // Fx1_rho's output is consumed in row 2.
  TransformResult R = reschedule(M.G, M.stmt("Fx1_rho"), 3);
  EXPECT_FALSE(R);
  EXPECT_NE(R.Error.find("consumer"), std::string::npos);
}

TEST(Transforms, RescheduleRejectsRowZero) {
  MfdGraph M;
  EXPECT_FALSE(reschedule(M.G, M.stmt("Fx1_rho"), 0));
}

TEST(Transforms, ProducerConsumerFusionInternalizes) {
  MfdGraph M;
  NodeId P = M.stmt("Fx1_rho"), C = M.stmt("Fx2_rho");
  TransformResult R = fuseProducerConsumer(M.G, P, C);
  ASSERT_TRUE(R) << R.Error;
  // The consumer node is gone; the producer absorbed its nest.
  EXPECT_TRUE(M.G.stmt(C).Dead);
  EXPECT_EQ(M.G.stmt(P).Nests.size(), 2u);
  EXPECT_EQ(M.G.stmt(P).Label, "Fx1_rho+Fx2_rho");
  // F1x_rho's only reader is now inside the node: internalized.
  NodeId V = M.G.findValue("F1x_rho");
  EXPECT_TRUE(M.G.value(V).Internalized);
  // The fused node took the consumer's schedule position.
  EXPECT_EQ(M.G.stmt(P).Row, 2);
}

TEST(Transforms, ProducerConsumerFusionKeepsSharedValuesMaterialized) {
  MfdGraph M;
  // Fusing the velocity chain would move Fx1_u below the other Fx2 readers
  // of F1x_u — rejected.
  TransformResult R =
      fuseProducerConsumer(M.G, M.stmt("Fx1_u"), M.stmt("Fx2_u"));
  EXPECT_FALSE(R);
  EXPECT_NE(R.Error.find("also read by"), std::string::npos);
}

TEST(Transforms, ProducerConsumerFusionComputesShift) {
  MfdGraph M;
  // Fuse Fx2_rho with Dx_rho: Dx reads F2x at (0,0) and (0,+1), so the
  // consumer shifts by +1 in x.
  NodeId P = M.stmt("Fx2_rho"), C = M.stmt("Dx_rho");
  TransformResult R = fuseProducerConsumer(M.G, P, C);
  ASSERT_TRUE(R) << R.Error;
  const StmtNode &Node = M.G.stmt(P);
  ASSERT_EQ(Node.Shifts.size(), 2u);
  EXPECT_EQ(Node.Shifts[1], (std::vector<std::int64_t>{0, 1}));
  // Fused domain is the hull: still the x faces.
  EXPECT_EQ(Node.Domain.dim(1).Lower.toString(), "0");
  EXPECT_EQ(Node.Domain.dim(1).Upper.toString(), "N");
}

TEST(Transforms, FusionRequiresDataflow) {
  MfdGraph M;
  TransformResult R =
      fuseProducerConsumer(M.G, M.stmt("Fx1_rho"), M.stmt("Fx2_u"));
  EXPECT_FALSE(R);
  EXPECT_NE(R.Error.find("no temporary value"), std::string::npos);
}

TEST(Transforms, ReadReductionFusionCollapsesStreams) {
  MfdGraph M;
  NodeId A = M.stmt("Fx1_rho"), B = M.stmt("Fy1_rho");
  NodeId In = M.G.findValue("in_rho");
  EXPECT_EQ(M.G.outDegree(In), 2u);
  TransformResult R = fuseReadReduction(M.G, A, B);
  ASSERT_TRUE(R) << R.Error;
  EXPECT_TRUE(M.G.stmt(B).Dead);
  // The read reduction: in_rho is streamed once.
  EXPECT_EQ(M.G.outDegree(In), 1u);
  // Outputs stay distinct (no storage reduction from RR fusion).
  EXPECT_FALSE(M.G.value(M.G.findValue("F1x_rho")).Internalized);
  EXPECT_FALSE(M.G.value(M.G.findValue("F1y_rho")).Internalized);
}

TEST(Transforms, ReadReductionWithoutCollapseKeepsStreams) {
  MfdGraph M;
  NodeId A = M.stmt("Fx1_rho"), B = M.stmt("Fy1_rho");
  NodeId In = M.G.findValue("in_rho");
  TransformResult R = fuseReadReduction(M.G, A, B, /*CollapseShared=*/false);
  ASSERT_TRUE(R) << R.Error;
  EXPECT_EQ(M.G.outDegree(In), 2u);
}

TEST(Transforms, ReadReductionRejectsDataflowPairs) {
  MfdGraph M;
  TransformResult R =
      fuseReadReduction(M.G, M.stmt("Fx1_rho"), M.stmt("Fx2_rho"));
  EXPECT_FALSE(R);
  EXPECT_NE(R.Error.find("producer-consumer"), std::string::npos);
}

TEST(Transforms, ReadReductionViaCommonOutput) {
  MfdGraph M;
  // Dx_rho and Dy_rho share no read, but accumulate into out_rho.
  // Dy must first be reachable: bring Fy1/Fy2 up.
  ASSERT_TRUE(fuseReadReduction(M.G, M.stmt("Fx1_rho"), M.stmt("Fy1_rho")));
  ASSERT_TRUE(fuseReadReduction(M.G, M.stmt("Fx1_u"), M.stmt("Fy1_u")));
  ASSERT_TRUE(fuseReadReduction(M.G, M.stmt("Fx1_v"), M.stmt("Fy1_v")));
  ASSERT_TRUE(fuseReadReduction(M.G, M.stmt("Fx1_e"), M.stmt("Fy1_e")));
  ASSERT_TRUE(reschedule(M.G, M.stmt("Fy2_rho"), 2));
  TransformResult R =
      fuseReadReduction(M.G, M.stmt("Dx_rho"), M.stmt("Dy_rho"));
  ASSERT_TRUE(R) << R.Error;
  EXPECT_NE(M.stmt("Dx_rho+Dy_rho"), InvalidNode);
}

TEST(Transforms, CollapseReads) {
  MfdGraph M;
  // Merge two statement nodes that both read F1x_u, then collapse.
  NodeId V = M.G.findValue("F1x_u");
  EXPECT_EQ(M.G.outDegree(V), 4u);
  TransformResult R = collapseReads(M.G, V, M.stmt("Fx2_rho"));
  ASSERT_TRUE(R) << R.Error;
  EXPECT_EQ(M.G.outDegree(V), 4u); // single edge already; idempotent
}

TEST(Transforms, GraphStaysValidAcrossRecipeSteps) {
  MfdGraph M;
  mfd::applyFuseWithinDirections(M.G);
  M.G.verify();
  // 1 + 4 + 1 + 4 = 10 live statement nodes.
  unsigned Live = 0;
  for (NodeId S = 0; S < M.G.numStmtNodes(); ++S)
    Live += M.G.stmt(S).Dead ? 0 : 1;
  EXPECT_EQ(Live, 10u);
}
