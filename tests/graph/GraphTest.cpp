//===- tests/graph/GraphTest.cpp ------------------------------------------===//

#include "graph/Graph.h"

#include "graph/DotExport.h"
#include "graph/GraphBuilder.h"
#include "minifluxdiv/Spec.h"

#include <gtest/gtest.h>

using namespace lcdfg;
using namespace lcdfg::graph;

namespace {

Graph buildMfd2D() {
  static ir::LoopChain Chain = mfd::buildChain2D();
  return buildGraph(Chain);
}

} // namespace

TEST(Graph, RowGroupLabel) {
  EXPECT_EQ(rowGroupLabel("Fx1_rho"), "Fx1");
  EXPECT_EQ(rowGroupLabel("Dx_u"), "Dx");
  EXPECT_EQ(rowGroupLabel("plain"), "plain");
  EXPECT_EQ(rowGroupLabel("_x"), "_x");
}

TEST(Graph, BuildShapeMatchesFigure3) {
  Graph G = buildMfd2D();
  // 24 statement nodes, 4 inputs + 16 temporaries + 4 outputs.
  EXPECT_EQ(G.numStmtNodes(), 24u);
  EXPECT_EQ(G.numValueNodes(), 24u);
  // Six rows of statement nodes: Fx1, Fx2, Dx, Fy1, Fy2, Dy.
  EXPECT_EQ(G.maxRow(), 6);
  // Four statement nodes per row (one per component).
  for (NodeId S = 0; S < G.numStmtNodes(); ++S)
    EXPECT_GE(G.stmt(S).Row, 1);
}

TEST(Graph, InputSizesUseFirstReaderFootprint) {
  Graph G = buildMfd2D();
  NodeId In = G.findValue("in_rho");
  ASSERT_NE(In, InvalidNode);
  EXPECT_EQ(G.value(In).Size.toString(), "N^2+4N");
  EXPECT_TRUE(G.value(In).Persistent);
  EXPECT_EQ(G.value(In).Row, 0);
}

TEST(Graph, EdgesAndDegrees) {
  Graph G = buildMfd2D();
  // The x velocity partial flux feeds every component's complete flux.
  NodeId F1xU = G.findValue("F1x_u");
  ASSERT_NE(F1xU, InvalidNode);
  EXPECT_EQ(G.outDegree(F1xU), 4u);
  // A non-velocity partial flux feeds only its own component.
  EXPECT_EQ(G.outDegree(G.findValue("F1x_rho")), 1u);
  // Inputs are read by both direction's partial fluxes.
  EXPECT_EQ(G.outDegree(G.findValue("in_e")), 2u);
  // Outputs are never read.
  EXPECT_EQ(G.outDegree(G.findValue("out_rho")), 0u);
}

TEST(Graph, ProducersAndSchedule) {
  Graph G = buildMfd2D();
  NodeId F2 = G.findValue("F2x_v");
  NodeId Producer = G.producerOf(F2);
  ASSERT_NE(Producer, InvalidNode);
  EXPECT_EQ(G.stmt(Producer).Label, "Fx2_v");
  // Inputs have no producer.
  EXPECT_EQ(G.producerOf(G.findValue("in_u")), InvalidNode);

  std::vector<NodeId> Order = G.scheduleOrder();
  ASSERT_EQ(Order.size(), 24u);
  // Schedule is row-major: rows never decrease.
  for (std::size_t I = 1; I < Order.size(); ++I)
    EXPECT_LE(G.stmt(Order[I - 1]).Row, G.stmt(Order[I]).Row);
  EXPECT_EQ(G.stmt(Order.front()).Label, "Fx1_rho");
  EXPECT_EQ(G.stmt(Order.back()).Label, "Dy_e");
}

TEST(Graph, StmtOfNest) {
  Graph G = buildMfd2D();
  for (unsigned I = 0; I < G.chain().numNests(); ++I) {
    NodeId S = G.stmtOfNest(I);
    ASSERT_NE(S, InvalidNode);
    EXPECT_EQ(G.stmt(S).Label, G.chain().nest(I).Name);
  }
}

TEST(Graph, DotExportContainsConventions) {
  Graph G = buildMfd2D();
  std::string Dot = toDot(G, {true, "figure3"});
  EXPECT_NE(Dot.find("digraph M2DFG"), std::string::npos);
  EXPECT_NE(Dot.find("shape=box"), std::string::npos);
  EXPECT_NE(Dot.find("shape=invtriangle"), std::string::npos);
  EXPECT_NE(Dot.find("fillcolor=gray80"), std::string::npos);
  EXPECT_NE(Dot.find("N^2+4N"), std::string::npos);
  EXPECT_NE(Dot.find("S_R ="), std::string::npos);
  EXPECT_NE(Dot.find("figure3"), std::string::npos);
}

TEST(Graph, TextDump) {
  Graph G = buildMfd2D();
  std::string Text = toText(G);
  EXPECT_NE(Text.find("row 0:"), std::string::npos);
  EXPECT_NE(Text.find("<Fx1_rho>"), std::string::npos);
  EXPECT_NE(Text.find("[in_rho N^2+4N]"), std::string::npos);
}

TEST(Graph, VerifyPassesOnBuild) {
  Graph G = buildMfd2D();
  G.verify(); // aborts on violation
  SUCCEED();
}

TEST(Graph, UngroupedBuildGivesOneRowPerNest) {
  ir::LoopChain Chain = mfd::buildChain2D();
  BuildOptions Options;
  Options.GroupRowsByNamePrefix = false;
  Graph G = buildGraph(Chain, Options);
  EXPECT_EQ(G.maxRow(), 24);
}
