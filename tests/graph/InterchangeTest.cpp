//===- tests/graph/InterchangeTest.cpp ------------------------------------===//
//
// Loop interchange on fused statement nodes: Section 5.2 credits the tiled
// variant's improvement to exploring a "larger set of intra-tile
// schedules"; interchange is that knob. Rotating the z-direction fused
// node so z runs innermost collapses its plane-sized carry buffer to two
// scalars — and the interpreted execution stays exact.
//
//===----------------------------------------------------------------------===//

#include "graph/Transforms.h"

#include "codegen/Generator.h"
#include "codegen/Interpreter.h"
#include "graph/GraphBuilder.h"
#include "minifluxdiv/Spec.h"
#include "storage/ReuseDistance.h"
#include "storage/StorageMap.h"

#include <gtest/gtest.h>

using namespace lcdfg;
using namespace lcdfg::graph;

namespace {

/// Fuses the z-direction rho chain of the 3D benchmark into one node.
struct FusedZ {
  ir::LoopChain Chain;
  Graph G;
  NodeId Node = InvalidNode;

  FusedZ() : Chain(mfd::buildChain3D()), G(buildGraph(Chain)) {
    EXPECT_TRUE(fuseProducerConsumer(G, G.findStmt("Fz1_rho"),
                                     G.findStmt("Fz2_rho")));
    EXPECT_TRUE(fuseProducerConsumer(G, G.findStmt("Fz1_rho+Fz2_rho"),
                                     G.findStmt("Dz_rho")));
    Node = G.findStmt("Fz1_rho+Fz2_rho+Dz_rho");
  }
};

} // namespace

TEST(Interchange, RejectsNonPermutations) {
  FusedZ F;
  EXPECT_FALSE(interchange(F.G, F.Node, {0, 1}));       // wrong arity
  EXPECT_FALSE(interchange(F.G, F.Node, {0, 0, 1}));    // repeated
  EXPECT_FALSE(interchange(F.G, F.Node, {0, 1, 7}));    // out of range
  EXPECT_FALSE(interchange(F.G, InvalidNode, {0, 1, 2}));
}

TEST(Interchange, IdentityClearsOverride) {
  FusedZ F;
  ASSERT_TRUE(interchange(F.G, F.Node, {2, 1, 0}));
  EXPECT_FALSE(F.G.stmt(F.Node).DimOrder.empty());
  ASSERT_TRUE(interchange(F.G, F.Node, {0, 1, 2}));
  EXPECT_TRUE(F.G.stmt(F.Node).DimOrder.empty());
}

TEST(Interchange, ShrinksThePlaneBufferToScalars) {
  FusedZ F;
  storage::reduceStorage(F.G);
  // Natural order (z, y, x): the z stencil's reuse distance is a plane.
  NodeId F2z = F.G.findValue("F2z_rho");
  ASSERT_TRUE(F.G.value(F2z).Internalized);
  EXPECT_EQ(F.G.value(F2z).Size.degree(), 2u);

  // Rotate z innermost: (y, x, z). The dependence (+1 in z) now has
  // stride one — two scalars suffice (the x-direction layout).
  ASSERT_TRUE(interchange(F.G, F.Node, {1, 2, 0}));
  storage::reduceStorage(F.G);
  EXPECT_EQ(F.G.value(F2z).Size.toString(), "2");
}

TEST(Interchange, RejectsOrdersThatNegateSkewedDependences) {
  // The library's own fusion produces componentwise non-negative
  // distances (every permutation stays legal), so build a node with a
  // skewed shift by hand: the (+1, -1) distance is lexicographically
  // positive under (y, x) but negative under (x, y).
  static ir::LoopChain Chain = [] {
    ir::LoopChain C("skewed");
    poly::AffineExpr N = poly::AffineExpr::var("N");
    poly::BoxSet Cells({poly::Dim{"y", poly::AffineExpr(0), N},
                        poly::Dim{"x", poly::AffineExpr(0), N}});
    ir::LoopNest A;
    A.Name = "A";
    A.Domain = Cells;
    A.Write = ir::Access{"a", {{0, 0}}};
    A.Reads = {ir::Access{"in", {{0, 0}}}};
    C.addNest(A);
    ir::LoopNest B;
    B.Name = "B";
    B.Domain = Cells;
    B.Write = ir::Access{"out", {{0, 0}}};
    B.Reads = {ir::Access{"a", {{0, 0}}}};
    C.addNest(B);
    C.finalize();
    return C;
  }();

  Graph G(Chain);
  NodeId In = G.addValueNode({/*Array=*/"in", Polynomial(1), Polynomial(1),
                              /*Persistent=*/true});
  NodeId AVal = G.addValueNode({"a", Polynomial(1), Polynomial(1), false});
  NodeId Out = G.addValueNode({"out", Polynomial(1), Polynomial(1), true});
  StmtNode Fused;
  Fused.Label = "A+B";
  Fused.Nests = {0, 1};
  Fused.Shifts = {{0, 0}, {1, -1}}; // consumer skewed by (+1, -1)
  Fused.Domain = Chain.nest(0).Domain;
  Fused.Row = 1;
  NodeId Node = G.addStmtNode(std::move(Fused));
  G.addReadEdge(In, Node);
  G.addReadEdge(AVal, Node);
  G.addWriteEdge(Node, AVal);
  G.addWriteEdge(Node, Out);

  // Dependence distance: (1, -1). Legal as scheduled...
  EXPECT_TRUE(interchange(G, Node, {0, 1}));
  // ...but reversing the loops makes it (-1, 1): rejected.
  TransformResult R = interchange(G, Node, {1, 0});
  EXPECT_FALSE(R);
  EXPECT_NE(R.Error.find("lexicographically negative"), std::string::npos);
}

TEST(Interchange, InterpretedExecutionUnchanged) {
  const std::int64_t N = 4;
  auto Run = [&](bool Rotate) {
    FusedZ F;
    if (Rotate) {
      EXPECT_TRUE(interchange(F.G, F.Node, {1, 2, 0}));
    }
    storage::reduceStorage(F.G);
    codegen::KernelRegistry Kernels;
    mfd::registerKernels(F.Chain, Kernels);
    std::map<std::string, std::int64_t, std::less<>> Env{{"N", N}};
    storage::StoragePlan Plan = storage::StoragePlan::build(F.G);
    storage::ConcreteStorage Store(Plan, Env);
    const char *Comps[5] = {"rho", "u", "v", "w", "e"};
    for (const char *C : Comps)
      F.G.chain().array(std::string("in_") + C)
          .Extent->forEachPoint(Env,
                                [&](const std::vector<std::int64_t> &P) {
                                  double V = 1.0 + 0.01 * (P[0] * 9 +
                                                           P[1] * 5 +
                                                           P[2]);
                                  Store.at(std::string("in_") + C, P) = V;
                                });
    codegen::AstPtr Ast = codegen::generate(F.G);
    codegen::execute(F.G, *Ast, Kernels, Store, Env);
    std::vector<double> Out;
    for (std::int64_t Z = 0; Z < N; ++Z)
      for (std::int64_t Y = 0; Y < N; ++Y)
        for (std::int64_t X = 0; X < N; ++X)
          Out.push_back(Store.at("out_rho", {Z, Y, X}));
    return Out;
  };
  std::vector<double> Natural = Run(false);
  std::vector<double> Rotated = Run(true);
  ASSERT_EQ(Natural.size(), Rotated.size());
  for (std::size_t I = 0; I < Natural.size(); ++I)
    EXPECT_NEAR(Natural[I], Rotated[I], 1e-13) << I;
}
