//===- tests/graph/CostModelTest.cpp --------------------------------------===//

#include "graph/CostModel.h"

#include "graph/GraphBuilder.h"
#include "minifluxdiv/Spec.h"
#include "parser/PragmaParser.h"

#include <gtest/gtest.h>

using namespace lcdfg;
using namespace lcdfg::graph;

TEST(CostModel, SeriesOfLoopsRowCosts) {
  ir::LoopChain Chain = mfd::buildChain2D();
  Graph G = buildGraph(Chain);
  CostReport Cost = computeCost(G);

  // Figure 3's per-row data-read costs (which our model reproduces
  // exactly; see EXPERIMENTS.md for the off-by-2N total in the paper).
  EXPECT_EQ(Cost.RowRead.at(0).toString(), "8N^2+32N"); // 8*(N^2+4N)
  EXPECT_EQ(Cost.RowRead.at(1).toString(), "7N^2+7N");  // 7*(N^2+N)
  EXPECT_EQ(Cost.RowRead.at(2).toString(), "4N^2+4N");  // 4*(N^2+N)
  EXPECT_EQ(Cost.RowRead.at(4).toString(), "7N^2+7N");
  EXPECT_EQ(Cost.RowRead.at(5).toString(), "4N^2+4N");
  EXPECT_EQ(Cost.TotalRead.toString(), "30N^2+54N");
  EXPECT_EQ(Cost.MaxStreams, 2u);
}

TEST(CostModel, RowWidths) {
  ir::LoopChain Chain = mfd::buildChain2D();
  Graph G = buildGraph(Chain);
  CostReport Cost = computeCost(G);
  // F1 and D rows stream one array; F2 rows stream two (Figure 3's blue
  // column: 1, 2, 1, 1, 2, 1).
  EXPECT_EQ(Cost.RowWidth.at(1), 1u);
  EXPECT_EQ(Cost.RowWidth.at(2), 2u);
  EXPECT_EQ(Cost.RowWidth.at(3), 1u);
  EXPECT_EQ(Cost.RowWidth.at(4), 1u);
  EXPECT_EQ(Cost.RowWidth.at(5), 2u);
  EXPECT_EQ(Cost.RowWidth.at(6), 1u);
}

TEST(CostModel, WideStencilRefinement) {
  // A 2D nest reading a stencil with two distinct non-innermost offsets
  // opens two streams under the refinement.
  const char *Src = R"(
#pragma omplc for domain(0:N-1, 1:N-1) with (x, y) \
    write A{(x,y)} read B{(x,y-1),(x,y),(x+1,y)}
A(x,y) = f(B);
)";
  auto R = parser::parseLoopChain(Src);
  ASSERT_TRUE(R) << R.Error;
  Graph G = buildGraph(*R.Chain);
  EXPECT_EQ(computeCost(G).MaxStreams, 1u);
  CostOptions Wide;
  Wide.CountWideStencilStreams = true;
  EXPECT_EQ(computeCost(G, Wide).MaxStreams, 2u);
}

TEST(CostModel, ReportRendering) {
  ir::LoopChain Chain = mfd::buildChain2D();
  Graph G = buildGraph(Chain);
  std::string Text = computeCost(G).toString();
  EXPECT_NE(Text.find("S_R = 30N^2+54N"), std::string::npos);
  EXPECT_NE(Text.find("S_c = 2"), std::string::npos);
}

TEST(CostModel, EvaluatesAtConcreteSizes) {
  ir::LoopChain Chain = mfd::buildChain2D();
  Graph G = buildGraph(Chain);
  CostReport Cost = computeCost(G);
  // At N = 16 (the paper's small box edge) the total is exact.
  EXPECT_EQ(Cost.TotalRead.evaluate(16), 30 * 256 + 54 * 16);
  EXPECT_EQ(Cost.TotalRead.evaluate(128), 30L * 128 * 128 + 54 * 128);
}
