//===- tests/tiling/TilingTest.cpp ----------------------------------------===//

#include "tiling/Tiling.h"

#include "poly/AffineExpr.h"

#include <gtest/gtest.h>

#include <set>

using namespace lcdfg;
using namespace lcdfg::tiling;
using poly::AffineExpr;
using poly::BoxSet;
using poly::Dim;

namespace {

ParamEnv env(std::int64_t N) { return {{"N", N}}; }

/// The 1D Fx -> Dx chain of Figure 5: 9 faces feed 8 cells.
ir::LoopChain figure5Chain() {
  ir::LoopChain Chain("fig5");
  AffineExpr N = AffineExpr::var("N");
  ir::LoopNest Fx;
  Fx.Name = "Fx";
  Fx.Domain = BoxSet({Dim{"i", AffineExpr(0), N}});
  Fx.Write = ir::Access{"F", {{0}}};
  Fx.Reads = {ir::Access{"in", {{-1}, {0}}}};
  Chain.addNest(Fx);
  ir::LoopNest Dx;
  Dx.Name = "Dx";
  Dx.Domain = BoxSet({Dim{"i", AffineExpr(0), N - AffineExpr(1)}});
  Dx.Write = ir::Access{"out", {{0}}};
  Dx.Reads = {ir::Access{"F", {{0}, {1}}}};
  Chain.addNest(Dx);
  Chain.finalize();
  return Chain;
}

} // namespace

TEST(Tiling, ClassicTilesPartitionTheDomain) {
  AffineExpr N = AffineExpr::var("N");
  BoxSet Domain({Dim{"y", AffineExpr(0), N - AffineExpr(1)},
                 Dim{"x", AffineExpr(0), N - AffineExpr(1)}});
  auto Tiles = classicTiles(Domain, {4, 4}, env(8));
  EXPECT_EQ(Tiles.size(), 4u);
  // Every point is covered exactly once.
  std::map<std::vector<std::int64_t>, int> Coverage;
  for (const BoxSet &T : Tiles)
    T.forEachPoint(env(8), [&](const std::vector<std::int64_t> &P) {
      ++Coverage[P];
    });
  EXPECT_EQ(Coverage.size(), 64u);
  for (const auto &[P, Count] : Coverage) {
    (void)P;
    EXPECT_EQ(Count, 1);
  }
}

TEST(Tiling, ClassicTilesHandlePartialTiles) {
  AffineExpr N = AffineExpr::var("N");
  BoxSet Domain({Dim{"x", AffineExpr(0), N - AffineExpr(1)}});
  auto Tiles = classicTiles(Domain, {4}, env(10));
  ASSERT_EQ(Tiles.size(), 3u);
  EXPECT_EQ(Tiles[2].numPoints(env(10)), 2);
}

TEST(Tiling, UntiledDimensionStaysWhole) {
  AffineExpr N = AffineExpr::var("N");
  BoxSet Domain({Dim{"y", AffineExpr(0), N - AffineExpr(1)},
                 Dim{"x", AffineExpr(0), N - AffineExpr(1)}});
  auto Tiles = classicTiles(Domain, {4, 0}, env(8));
  EXPECT_EQ(Tiles.size(), 2u);
  EXPECT_EQ(Tiles[0].numPoints(env(8)), 32);
}

TEST(Tiling, Figure5OverlappedTiling) {
  // Figure 5(c): tile size 4 over 8 cells; the producer executes
  // iteration 4 in both tiles.
  ir::LoopChain Chain = figure5Chain();
  ChainTiling T = overlappedTiling(Chain, {4}, env(8));
  ASSERT_EQ(T.Tiles.size(), 2u);

  // Consumer tiles are exactly the classic tiles.
  EXPECT_EQ(T.Tiles[0].NestDomains.at(1).numPoints(env(8)), 4);
  EXPECT_EQ(T.Tiles[1].NestDomains.at(1).numPoints(env(8)), 4);

  // Producer domains expand by one face: 5 iterations each, 10 total for
  // 9 required — one redundant iteration.
  EXPECT_EQ(T.Tiles[0].NestDomains.at(0).numPoints(env(8)), 5);
  EXPECT_EQ(T.Tiles[1].NestDomains.at(0).numPoints(env(8)), 5);
  EXPECT_EQ(T.ExecutedPoints.at(0), 10);
  EXPECT_EQ(T.RequiredPoints.at(0), 9);
  EXPECT_GT(T.redundancy(), 1.0);
  EXPECT_LT(T.redundancy(), 1.1);
}

TEST(Tiling, OverlappedTilesCoverEveryIteration) {
  ir::LoopChain Chain = figure5Chain();
  for (std::int64_t Size : {2, 3, 4, 8}) {
    ChainTiling T = overlappedTiling(Chain, {Size}, env(8));
    for (unsigned Nest = 0; Nest < Chain.numNests(); ++Nest) {
      std::set<std::int64_t> Covered;
      for (const OverlappedTile &Tile : T.Tiles) {
        auto It = Tile.NestDomains.find(Nest);
        if (It == Tile.NestDomains.end())
          continue;
        It->second.forEachPoint(
            env(8), [&](const std::vector<std::int64_t> &P) {
              Covered.insert(P[0]);
            });
      }
      std::set<std::int64_t> Required;
      Chain.nest(Nest).Domain.forEachPoint(
          env(8), [&](const std::vector<std::int64_t> &P) {
            Required.insert(P[0]);
          });
      EXPECT_EQ(Covered, Required) << "nest " << Nest << " tile " << Size;
    }
  }
}

TEST(Tiling, DeepChainsExpandTransitively) {
  // A three-stage 1D chain: each stage reads its predecessor at {0, +1},
  // so the first stage expands by two per tile.
  ir::LoopChain Chain("deep");
  AffineExpr N = AffineExpr::var("N");
  const char *Names[3] = {"A", "B", "C"};
  for (int S = 0; S < 3; ++S) {
    ir::LoopNest Nest;
    Nest.Name = Names[S];
    Nest.Domain = BoxSet({Dim{"i", AffineExpr(0), N - AffineExpr(1)}});
    Nest.Write = ir::Access{std::string("v") + Names[S], {{0}}};
    Nest.Reads = {
        ir::Access{S == 0 ? "input" : std::string("v") + Names[S - 1],
                   S == 0 ? std::vector<std::vector<std::int64_t>>{{0}}
                          : std::vector<std::vector<std::int64_t>>{{0},
                                                                   {1}}}};
    Chain.addNest(Nest);
  }
  Chain.finalize();
  ChainTiling T = overlappedTiling(Chain, {4}, env(8));
  ASSERT_EQ(T.Tiles.size(), 2u);
  // Stage A must cover [0, 5] for consumer tile [0, 3] — but clipped to
  // its own domain.
  EXPECT_EQ(T.Tiles[0].NestDomains.at(0).numPoints(env(8)), 6);
  EXPECT_EQ(T.Tiles[0].NestDomains.at(1).numPoints(env(8)), 5);
}

TEST(Tiling, Render1DMatchesFigure5Shape) {
  ir::LoopChain Chain = figure5Chain();
  ChainTiling T = overlappedTiling(Chain, {4}, env(8));
  std::string Text = renderTiling1D(Chain, T, env(8));
  EXPECT_NE(Text.find("tile 0:"), std::string::npos);
  EXPECT_NE(Text.find("Fx: 0 1 2 3 4"), std::string::npos);
  EXPECT_NE(Text.find("Dx: 0 1 2 3"), std::string::npos);
  EXPECT_NE(Text.find("Fx: 4 5 6 7 8"), std::string::npos);
}
