//===- tests/tiling/TiledExecutorTest.cpp ---------------------------------===//
//
// Property: executing a chain tile by tile (fusion-of-tiles schedule over
// the overlapped decomposition) reproduces the untiled execution exactly,
// for any tile size — including chains with several accumulating terminal
// statements (all three MiniFluxDiv directions).
//
//===----------------------------------------------------------------------===//

#include "tiling/TiledExecutor.h"

#include "graph/GraphBuilder.h"
#include "minifluxdiv/Spec.h"

#include <gtest/gtest.h>

using namespace lcdfg;
using namespace lcdfg::tiling;

namespace {

/// Storage + inputs for a chain at size N; returns the plan-backed store.
struct Harness {
  ir::LoopChain Chain;
  codegen::KernelRegistry Kernels;
  graph::Graph G;
  storage::StoragePlan Plan;
  ParamEnv Env;

  explicit Harness(ir::LoopChain C, std::int64_t N)
      : Chain(std::move(C)), G(graph::buildGraph(Chain)),
        Plan(storage::StoragePlan::build(G, /*UseAllocation=*/false)),
        Env{{"N", N}} {
    mfd::registerKernels(Chain, Kernels);
  }

  storage::ConcreteStorage freshStore() {
    storage::ConcreteStorage Store(Plan, Env);
    for (const std::string &Name : Chain.arrayNames()) {
      if (Chain.array(Name).Kind != ir::StorageKind::PersistentInput)
        continue;
      Chain.array(Name).Extent->forEachPoint(
          Env, [&](const std::vector<std::int64_t> &P) {
            double V = 1.0;
            for (std::size_t D = 0; D < P.size(); ++D)
              V += 0.001 * static_cast<double>((D + 3) * P[D]);
            Store.at(Name, P) = V;
          });
    }
    return Store;
  }

  std::vector<double> outputs(storage::ConcreteStorage &Store) {
    std::vector<double> Out;
    for (const std::string &Name : Chain.arrayNames()) {
      if (Chain.array(Name).Kind != ir::StorageKind::PersistentOutput)
        continue;
      Chain.array(Name).Extent->forEachPoint(
          Env, [&](const std::vector<std::int64_t> &P) {
            Out.push_back(Store.at(Name, P));
          });
    }
    return Out;
  }
};

} // namespace

class TiledExecution2D : public ::testing::TestWithParam<int> {};

TEST_P(TiledExecution2D, MatchesUntiled) {
  std::int64_t N = 8;
  Harness S(mfd::buildChain2D(), N);

  storage::ConcreteStorage Ref = S.freshStore();
  executeUntiled(S.Chain, S.Kernels, Ref, S.Env);
  std::vector<double> Expected = S.outputs(Ref);

  int T = GetParam();
  ChainTiling Tiling = overlappedTiling(S.Chain, {T, T}, S.Env);
  storage::ConcreteStorage Store = S.freshStore();
  executeTiled(S.Chain, Tiling, S.Kernels, Store, S.Env);
  std::vector<double> Got = S.outputs(Store);

  ASSERT_EQ(Expected.size(), Got.size());
  for (std::size_t I = 0; I < Expected.size(); ++I)
    EXPECT_DOUBLE_EQ(Expected[I], Got[I]) << "flat index " << I;
}

INSTANTIATE_TEST_SUITE_P(TileSizes, TiledExecution2D,
                         ::testing::Values(2, 3, 4, 8, 16));

TEST(TiledExecutor, AllThreeDirectionsAreSeeded) {
  // MiniFluxDiv 3D has three accumulating terminals (Dx, Dy, Dz per
  // component); the tiling must execute every one of them exactly once.
  std::int64_t N = 4;
  Harness S(mfd::buildChain3D(), N);

  storage::ConcreteStorage Ref = S.freshStore();
  executeUntiled(S.Chain, S.Kernels, Ref, S.Env);
  std::vector<double> Expected = S.outputs(Ref);

  ChainTiling Tiling = overlappedTiling(S.Chain, {2, 2, 0}, S.Env);
  // Terminal statements are never expanded: across tiles each executes
  // exactly its domain.
  for (unsigned I = 0; I < S.Chain.numNests(); ++I)
    if (S.Chain.readersOf(S.Chain.nest(I).Write.Array).empty()) {
      EXPECT_EQ(Tiling.ExecutedPoints.at(I), Tiling.RequiredPoints.at(I))
          << S.Chain.nest(I).Name;
    }

  storage::ConcreteStorage Store = S.freshStore();
  executeTiled(S.Chain, Tiling, S.Kernels, Store, S.Env);
  std::vector<double> Got = S.outputs(Store);
  ASSERT_EQ(Expected.size(), Got.size());
  for (std::size_t I = 0; I < Expected.size(); ++I)
    EXPECT_DOUBLE_EQ(Expected[I], Got[I]);
}

TEST(TiledExecutor, ProducersOverlapButConsumersPartition) {
  std::int64_t N = 8;
  Harness S(mfd::buildChain2D(), N);
  ChainTiling Tiling = overlappedTiling(S.Chain, {4, 4}, S.Env);
  bool AnyOverlap = false;
  for (unsigned I = 0; I < S.Chain.numNests(); ++I) {
    bool Terminal = S.Chain.readersOf(S.Chain.nest(I).Write.Array).empty();
    auto Executed = Tiling.ExecutedPoints.find(I);
    if (Executed == Tiling.ExecutedPoints.end())
      continue;
    if (Terminal)
      EXPECT_EQ(Executed->second, Tiling.RequiredPoints.at(I));
    else
      AnyOverlap |= Executed->second > Tiling.RequiredPoints.at(I);
  }
  EXPECT_TRUE(AnyOverlap) << "overlapped tiling should recompute faces";
  EXPECT_GT(Tiling.redundancy(), 1.0);
}
