//===- tests/tiling/WavefrontTest.cpp -------------------------------------===//

#include "tiling/Wavefront.h"

#include "../common/RandomChain.h"
#include "codegen/Generator.h"
#include "graph/GraphBuilder.h"
#include "graph/Transforms.h"
#include "pipelines/UnsharpMask.h"
#include "support/Status.h"

#include <gtest/gtest.h>

using namespace lcdfg;
using namespace lcdfg::tiling;
using namespace lcdfg::graph;

namespace {

/// The 1D Fx -> Dx chain of Figure 5, fused with its +1 shift.
struct Fused1D {
  ir::LoopChain Chain;
  Graph G;
  NodeId Node;

  Fused1D() : Chain(makeChain()), G(buildGraph(Chain)) {
    EXPECT_TRUE(fuseProducerConsumer(G, G.findStmt("Fx"), G.findStmt("Dx")));
    Node = G.findStmt("Fx+Dx");
  }

  static ir::LoopChain makeChain() {
    ir::LoopChain Chain("fig5");
    poly::AffineExpr N = poly::AffineExpr::var("N");
    ir::LoopNest Fx;
    Fx.Name = "Fx";
    Fx.Domain = poly::BoxSet({poly::Dim{"i", poly::AffineExpr(0), N}});
    Fx.Write = ir::Access{"F", {{0}}};
    Fx.Reads = {ir::Access{"in", {{-1}, {0}}}};
    Chain.addNest(Fx);
    ir::LoopNest Dx;
    Dx.Name = "Dx";
    Dx.Domain = poly::BoxSet(
        {poly::Dim{"i", poly::AffineExpr(0), N - poly::AffineExpr(1)}});
    Dx.Write = ir::Access{"out", {{0}}};
    Dx.Reads = {ir::Access{"F", {{0}, {1}}}};
    Chain.addNest(Dx);
    Chain.finalize();
    return Chain;
  }
};

} // namespace

TEST(Wavefront, Figure5eClassicTilingOfFusedScheduleIsSerial) {
  Fused1D F;
  ParamEnv Env{{"N", 8}};
  WavefrontPlan Plan = wavefrontTiling(F.G, F.Node, {4}, Env);
  // Figure 5(e): the +1 dependence chains the tiles — serial execution.
  ASSERT_EQ(Plan.Tiles.size(), 3u); // 9 fused iterations / 4
  EXPECT_TRUE(Plan.isSerial());
  EXPECT_EQ(Plan.Fronts.size(), Plan.Tiles.size());
  ASSERT_EQ(Plan.DepVectors.size(), 1u);
  EXPECT_EQ(Plan.DepVectors[0], (std::vector<int>{1}));
}

TEST(Wavefront, ExecutionMatchesFusedSemantics) {
  Fused1D F;
  codegen::KernelRegistry Kernels;
  F.Chain.nest(0).KernelId =
      Kernels.add([](const std::vector<double> &R, double) {
        return 0.5 * (R[0] + R[1]);
      });
  F.Chain.nest(1).KernelId =
      Kernels.add([](const std::vector<double> &R, double) {
        return R[1] - R[0];
      });
  ParamEnv Env{{"N", 8}};

  auto Run = [&](bool Tiled, bool Reverse) {
    storage::StoragePlan Plan = storage::StoragePlan::build(F.G);
    storage::ConcreteStorage Store(Plan, Env);
    F.Chain.array("in").Extent->forEachPoint(
        Env, [&](const std::vector<std::int64_t> &P) {
          Store.at("in", P) = 1.0 + 0.1 * static_cast<double>(P[0]);
        });
    if (Tiled) {
      WavefrontPlan WPlan = wavefrontTiling(F.G, F.Node, {4}, Env);
      executeWavefront(F.G, F.Node, WPlan, Kernels, Store, Env, Reverse);
    } else {
      codegen::AstPtr Ast = codegen::generate(F.G);
      codegen::execute(F.G, *Ast, Kernels, Store, Env);
    }
    std::vector<double> Out;
    for (std::int64_t I = 0; I < 8; ++I)
      Out.push_back(Store.at("out", {I}));
    return Out;
  };

  std::vector<double> Expected = Run(false, false);
  EXPECT_EQ(Run(true, false), Expected);
  EXPECT_EQ(Run(true, true), Expected);
}

TEST(Wavefront, TwoDimensionalFusionExposesFrontParallelism) {
  // The fused unsharp pipeline has dependences only in y (the x blur reads
  // the persistent input): tiling (y, x) gives fronts that span all x
  // tiles — parallelism the serialized 1D case lacks.
  ir::LoopChain Chain = pipelines::buildUnsharpChain();
  Graph G = buildGraph(Chain);
  ASSERT_TRUE(fuseProducerConsumer(G, G.findStmt("blurx"),
                                   G.findStmt("blury")));
  ASSERT_TRUE(fuseProducerConsumer(G, G.findStmt("blurx+blury"),
                                   G.findStmt("sharpen")));
  ASSERT_TRUE(fuseProducerConsumer(G, G.findStmt("blurx+blury+sharpen"),
                                   G.findStmt("mask")));
  NodeId Node = G.findStmt("blurx+blury+sharpen+mask");
  ASSERT_NE(Node, InvalidNode);

  ParamEnv Env{{"N", 16}};
  WavefrontPlan Plan = wavefrontTiling(G, Node, {8, 8}, Env);
  EXPECT_FALSE(Plan.isSerial());
  // Dependences point in +y only.
  for (const auto &V : Plan.DepVectors) {
    EXPECT_EQ(V[0], 1);
    EXPECT_EQ(V[1], 0);
  }
  EXPECT_GE(Plan.maxParallelism(), 2u);

  // Execution equivalence, both tile orders.
  codegen::KernelRegistry Kernels;
  pipelines::registerKernels(Chain, Kernels);
  auto Run = [&](bool Tiled, bool Reverse) {
    storage::StoragePlan SPlan = storage::StoragePlan::build(G);
    storage::ConcreteStorage Store(SPlan, Env);
    Chain.array("img").Extent->forEachPoint(
        Env, [&](const std::vector<std::int64_t> &P) {
          Store.at("img", P) =
              0.3 + 0.01 * static_cast<double>(P[0] * 3 + P[1]);
        });
    if (Tiled) {
      executeWavefront(G, Node, Plan, Kernels, Store, Env, Reverse);
    } else {
      codegen::AstPtr Ast = codegen::generate(G);
      codegen::execute(G, *Ast, Kernels, Store, Env);
    }
    std::vector<double> Out;
    for (std::int64_t Y = 0; Y < 16; ++Y)
      for (std::int64_t X = 0; X < 16; ++X)
        Out.push_back(Store.at("out", {Y, X}));
    return Out;
  };
  std::vector<double> Expected = Run(false, false);
  EXPECT_EQ(Run(true, false), Expected);
  EXPECT_EQ(Run(true, true), Expected);
}

TEST(Wavefront, RejectsTilesSmallerThanTheStencil) {
  ir::LoopChain Chain = pipelines::buildUnsharpChain();
  Graph G = buildGraph(Chain);
  ASSERT_TRUE(fuseProducerConsumer(G, G.findStmt("blurx"),
                                   G.findStmt("blury")));
  NodeId Node = G.findStmt("blurx+blury");
  ParamEnv Env{{"N", 16}};
  // The y dependence distance reaches 4; a tile of 2 cannot contain it.
  try {
    wavefrontTiling(G, Node, {2, 8}, Env);
    FAIL() << "expected StatusError";
  } catch (const support::StatusError &E) {
    EXPECT_EQ(E.status().code(), support::ErrorCode::TilingInvalid);
    EXPECT_NE(E.status().message().find("dependence distance exceeds"),
              std::string::npos);
  }
}

TEST(Wavefront, UntiledDimensionsAreSupported) {
  Fused1D F;
  ParamEnv Env{{"N", 8}};
  WavefrontPlan Plan = wavefrontTiling(F.G, F.Node, {0}, Env);
  EXPECT_EQ(Plan.Tiles.size(), 1u);
  EXPECT_EQ(Plan.Fronts.size(), 1u);
  EXPECT_TRUE(Plan.isSerial());
}
