//===- tests/codegen/GeneratorTest.cpp ------------------------------------===//

#include "codegen/Generator.h"

#include "codegen/CPrinter.h"
#include "graph/GraphBuilder.h"
#include "graph/Transforms.h"
#include "minifluxdiv/Spec.h"
#include "storage/ReuseDistance.h"
#include "storage/StorageMap.h"

#include <gtest/gtest.h>

using namespace lcdfg;
using namespace lcdfg::codegen;
using namespace lcdfg::graph;

TEST(Generator, SeriesGraphLowersToOneNestPerStatement) {
  ir::LoopChain Chain = mfd::buildChain2D();
  Graph G = buildGraph(Chain);
  AstPtr Root = generate(G);
  ASSERT_EQ(Root->Kind, AstKind::Block);
  EXPECT_EQ(Root->Children.size(), 24u);
  EXPECT_EQ(Root->countStatements(), 24u);
  // Each child is a 2-deep loop nest.
  const AstNode &First = *Root->Children.front();
  ASSERT_EQ(First.Kind, AstKind::Loop);
  EXPECT_EQ(First.Iter, "y");
  ASSERT_EQ(First.Children.size(), 1u);
  EXPECT_EQ(First.Children[0]->Kind, AstKind::Loop);
  EXPECT_EQ(First.Children[0]->Iter, "x");
}

TEST(Generator, FusedNodeGetsGuardsForShiftedMembers) {
  ir::LoopChain Chain = mfd::buildChain2D();
  Graph G = buildGraph(Chain);
  ASSERT_TRUE(fuseProducerConsumer(G, G.findStmt("Fx2_rho"),
                                   G.findStmt("Dx_rho")));
  AstPtr Node = generateStmtNode(G, G.findStmt("Fx2_rho+Dx_rho"));
  // Two statements, at least one guarded (the shifted Dx).
  EXPECT_EQ(Node->countStatements(), 2u);
  std::string Code = printC(G, *Node);
  EXPECT_NE(Code.find("if ("), std::string::npos);
  EXPECT_NE(Code.find("f_Dx_rho"), std::string::npos);
  EXPECT_NE(Code.find("f_Fx2_rho"), std::string::npos);
}

TEST(Generator, PrinterShowsShiftedIndices) {
  ir::LoopChain Chain = mfd::buildChain2D();
  Graph G = buildGraph(Chain);
  ASSERT_TRUE(fuseProducerConsumer(G, G.findStmt("Fx2_rho"),
                                   G.findStmt("Dx_rho")));
  std::string Code = printC(G, *generate(G));
  // The shifted Dx instance writes out_rho at x-1.
  EXPECT_NE(Code.find("out_rho(y, x-1)"), std::string::npos);
}

TEST(Generator, PrinterAppliesModuloStorageMaps) {
  ir::LoopChain Chain = mfd::buildChain2D();
  Graph G = buildGraph(Chain);
  mfd::applyFuseWithinDirections(G);
  storage::reduceStorage(G);
  storage::StoragePlan Plan = storage::StoragePlan::build(G);
  PrintOptions Options;
  Options.Plan = &Plan;
  std::string Code = printC(G, *generate(G), Options);
  // Internalized buffers print as modulo-mapped spaces (Figure 1's
  // optimized code).
  EXPECT_NE(Code.find("% (2)"), std::string::npos);
  EXPECT_NE(Code.find("% (N+1)"), std::string::npos);
  EXPECT_NE(Code.find("space"), std::string::npos);
  // Persistent arrays keep symbolic multi-dimensional form.
  EXPECT_NE(Code.find("in_rho("), std::string::npos);
}

TEST(Generator, LoopBoundsComeFromTheDomain) {
  ir::LoopChain Chain = mfd::buildChain2D();
  Graph G = buildGraph(Chain);
  std::string Code = printC(G, *generate(G));
  EXPECT_NE(Code.find("for (int x = 0; x <= N; ++x)"), std::string::npos);
  EXPECT_NE(Code.find("for (int y = 0; y <= N-1; ++y)"),
            std::string::npos);
}
