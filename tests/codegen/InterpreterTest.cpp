//===- tests/codegen/InterpreterTest.cpp ----------------------------------===//
//
// End-to-end validation of the graph -> AST -> execution pipeline: every
// transformed schedule (with reduced storage mappings) must compute exactly
// what the original series-of-loops schedule computes.
//
//===----------------------------------------------------------------------===//

#include "codegen/Interpreter.h"

#include "codegen/Generator.h"
#include "graph/GraphBuilder.h"
#include "minifluxdiv/Spec.h"
#include "storage/ReuseDistance.h"
#include "support/Status.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace lcdfg;
using namespace lcdfg::codegen;
using namespace lcdfg::graph;

namespace {

using Env = std::map<std::string, std::int64_t, std::less<>>;

double inputValue(const std::string &Array, std::int64_t Y, std::int64_t X) {
  // Deterministic, well-conditioned pseudo-random input.
  std::uint64_t H = std::hash<std::string>{}(Array) * 0x9e3779b97f4a7c15ull +
                    static_cast<std::uint64_t>(Y * 131 + X * 7 + 1000);
  H ^= H >> 33;
  H *= 0xff51afd7ed558ccdull;
  H ^= H >> 33;
  return 0.5 + static_cast<double>(H >> 11) / 9007199254740992.0;
}

/// Runs one 2D MiniFluxDiv schedule through the interpreter and returns
/// the four output arrays flattened.
std::vector<double> runSchedule(Graph &G, const Env &E, bool Reduce) {
  if (Reduce)
    storage::reduceStorage(G);
  storage::StoragePlan Plan = storage::StoragePlan::build(G);
  storage::ConcreteStorage Store(Plan, E);

  std::int64_t N = E.at("N");
  KernelRegistry Kernels;
  // Kernel ids already assigned on the shared chain (see fixture).
  for (const std::string C : {"rho", "u", "v", "e"}) {
    const poly::BoxSet &Extent = *G.chain().array("in_" + C).Extent;
    Extent.forEachPoint(E, [&](const std::vector<std::int64_t> &P) {
      Store.at("in_" + C, P) = inputValue("in_" + C, P[0], P[1]);
    });
    // Outputs accumulate from the inputs' interior.
    for (std::int64_t Y = 0; Y < N; ++Y)
      for (std::int64_t X = 0; X < N; ++X)
        Store.at("out_" + C, {Y, X}) = inputValue("in_" + C, Y, X);
  }

  mfd::registerKernels(const_cast<ir::LoopChain &>(G.chain()), Kernels);
  AstPtr Root = generate(G);
  execute(G, *Root, Kernels, Store, E);

  std::vector<double> Out;
  for (const std::string C : {"rho", "u", "v", "e"})
    for (std::int64_t Y = 0; Y < N; ++Y)
      for (std::int64_t X = 0; X < N; ++X)
        Out.push_back(Store.at("out_" + C, {Y, X}));
  return Out;
}

void expectClose(const std::vector<double> &A, const std::vector<double> &B) {
  ASSERT_EQ(A.size(), B.size());
  for (std::size_t I = 0; I < A.size(); ++I)
    EXPECT_NEAR(A[I], B[I], 1e-12 * std::max(1.0, std::fabs(A[I])))
        << "at flat index " << I;
}

struct Schedules {
  ir::LoopChain Chain = mfd::buildChain2D();
};

} // namespace

TEST(Interpreter, SeriesScheduleProducesFluxDifferences) {
  Schedules S;
  Graph G = buildGraph(S.Chain);
  Env E{{"N", 4}};
  std::vector<double> Out = runSchedule(G, E, /*Reduce=*/false);
  // Sanity: outputs differ from the raw inputs (the update happened) and
  // are finite.
  bool AnyChanged = false;
  std::size_t I = 0;
  for (const std::string C : {"rho", "u", "v", "e"})
    for (std::int64_t Y = 0; Y < 4; ++Y)
      for (std::int64_t X = 0; X < 4; ++X, ++I) {
        EXPECT_TRUE(std::isfinite(Out[I]));
        AnyChanged |= Out[I] != inputValue("in_" + C, Y, X);
      }
  EXPECT_TRUE(AnyChanged);
}

using RecipeAndSize = std::tuple<int, std::int64_t>;

class TransformedSchedule : public ::testing::TestWithParam<RecipeAndSize> {
};

TEST_P(TransformedSchedule, MatchesSeriesReference) {
  auto [Recipe, N] = GetParam();
  Env E{{"N", N}};

  Schedules Ref;
  Graph RefG = buildGraph(Ref.Chain);
  std::vector<double> Expected = runSchedule(RefG, E, /*Reduce=*/false);

  Schedules Test;
  Graph TestG = buildGraph(Test.Chain);
  switch (Recipe) {
  case 0:
    mfd::applyFuseAmongDirections(TestG);
    break;
  case 1:
    mfd::applyFuseWithinDirections(TestG);
    break;
  case 2:
    mfd::applyFuseAllLevels(TestG);
    break;
  }
  // Reduced storage: the transformed schedule runs through modulo-mapped
  // buffers sized by reuse distance.
  std::vector<double> Got = runSchedule(TestG, E, /*Reduce=*/true);
  expectClose(Expected, Got);
}

static std::string
transformedScheduleName(const ::testing::TestParamInfo<RecipeAndSize> &Info) {
  static const char *Names[] = {"fuseAmong", "fuseWithin", "fuseAll"};
  return std::string(Names[std::get<0>(Info.param)]) + "_N" +
         std::to_string(std::get<1>(Info.param));
}

INSTANTIATE_TEST_SUITE_P(RecipesAndSizes, TransformedSchedule,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(
                                                std::int64_t(2),
                                                std::int64_t(4),
                                                std::int64_t(7))),
                         transformedScheduleName);

TEST(Interpreter, UnreducedFusedScheduleAlsoMatches) {
  Env E{{"N", 5}};
  Schedules Ref;
  Graph RefG = buildGraph(Ref.Chain);
  std::vector<double> Expected = runSchedule(RefG, E, /*Reduce=*/false);

  Schedules Test;
  Graph TestG = buildGraph(Test.Chain);
  mfd::applyFuseAllLevels(TestG);
  std::vector<double> Got = runSchedule(TestG, E, /*Reduce=*/false);
  expectClose(Expected, Got);
}

TEST(Interpreter, KernelRegistryRejectsUnknownIds) {
  KernelRegistry Kernels;
  int Id = Kernels.add([](const std::vector<double> &, double) {
    return 0.0;
  });
  EXPECT_EQ(Id, 0);
  try {
    Kernels.get(7);
    FAIL() << "expected StatusError";
  } catch (const support::StatusError &E) {
    EXPECT_EQ(E.status().code(), support::ErrorCode::KernelMissing);
    EXPECT_NE(E.status().message().find("unknown kernel"), std::string::npos);
  }
}
