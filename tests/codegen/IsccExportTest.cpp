//===- tests/codegen/IsccExportTest.cpp -----------------------------------===//

#include "codegen/IsccExport.h"

#include "graph/GraphBuilder.h"
#include "graph/Transforms.h"
#include "minifluxdiv/Spec.h"

#include <gtest/gtest.h>

using namespace lcdfg;
using namespace lcdfg::graph;

TEST(IsccExport, SeriesScheduleEmitsDomainsAndMaps) {
  ir::LoopChain Chain = mfd::buildChain2D();
  Graph G = buildGraph(Chain);
  std::string Script = codegen::exportIscc(G);
  // One named domain per statement set.
  EXPECT_NE(Script.find("D_Fx1_rho := [N] -> { Fx1_rho[y, x] : 0 <= y <= "
                        "N-1 and 0 <= x <= N };"),
            std::string::npos)
      << Script;
  // Schedule maps carry (row, col, iterators, member).
  EXPECT_NE(Script.find("S_Fx1_rho := [N] -> { Fx1_rho[y, x] -> [1, 0, y, "
                        "x, 0] };"),
            std::string::npos)
      << Script;
  // The final codegen call unions every scheduled domain.
  EXPECT_NE(Script.find("codegen("), std::string::npos);
  EXPECT_NE(Script.find("(S_Dy_e * D_Dy_e)"), std::string::npos);
}

TEST(IsccExport, FusionShowsUpAsShiftedSchedules) {
  ir::LoopChain Chain = mfd::buildChain2D();
  Graph G = buildGraph(Chain);
  ASSERT_TRUE(fuseProducerConsumer(G, G.findStmt("Fx2_rho"),
                                   G.findStmt("Dx_rho")));
  std::string Script = codegen::exportIscc(G);
  // Both members share row/col; the consumer is shifted by +1 in x and
  // ordered second within the point.
  EXPECT_NE(Script.find("S_Fx2_rho := [N] -> { Fx2_rho[y, x] -> [3, 0, y, "
                        "x, 0] };"),
            std::string::npos)
      << Script;
  EXPECT_NE(Script.find("S_Dx_rho := [N] -> { Dx_rho[y, x] -> [3, 0, y, x "
                        "+ 1, 1] };"),
            std::string::npos)
      << Script;
}

TEST(IsccExport, AccessRelationsUnionStencilPoints) {
  ir::LoopChain Chain = mfd::buildChain2D();
  Graph G = buildGraph(Chain);
  std::string Script = codegen::exportIscc(G);
  EXPECT_NE(Script.find("R_Dx_rho_1 := [N] -> { Dx_rho[y, x] -> "
                        "F2x_rho[y, x]; Dx_rho[y, x] -> F2x_rho[y, x + 1] "
                        "};"),
            std::string::npos)
      << Script;
  EXPECT_NE(Script.find("W_Fx1_u_0"), std::string::npos);
}

TEST(IsccExport, AccessesCanBeOmitted) {
  ir::LoopChain Chain = mfd::buildChain2D();
  Graph G = buildGraph(Chain);
  codegen::IsccOptions Options;
  Options.IncludeAccesses = false;
  std::string Script = codegen::exportIscc(G, Options);
  EXPECT_EQ(Script.find("R_Dx_rho_1"), std::string::npos);
  EXPECT_NE(Script.find("codegen("), std::string::npos);
}
