//===- tests/codegen/CPrinterTest.cpp -------------------------------------===//

#include "codegen/CPrinter.h"

#include "codegen/Generator.h"
#include "graph/GraphBuilder.h"
#include "graph/Transforms.h"
#include "parser/PragmaParser.h"
#include "storage/ReuseDistance.h"

#include <gtest/gtest.h>

using namespace lcdfg;
using namespace lcdfg::codegen;
using namespace lcdfg::graph;

namespace {

const char *ChainSource = R"(
#pragma omplc for domain(0:N, 0:N-1) with (x, y) \
    write A{(x,y)} read IN{(x-1,y),(x,y)}
S1: A(x,y) = f(IN);
#pragma omplc for domain(0:N-1, 0:N-1) with (x, y) \
    write OUT{(x,y)} read A{(x,y),(x+1,y)}
S2: OUT(x,y) = g(A);
)";

} // namespace

TEST(CPrinter, SymbolicFormWithoutPlan) {
  auto R = parser::parseLoopChain(ChainSource);
  ASSERT_TRUE(R) << R.Error;
  Graph G = buildGraph(*R.Chain);
  std::string Code = printC(G, *generate(G));
  // Loops, indices, and callee names all render.
  EXPECT_NE(Code.find("for (int y = 0; y <= N-1; ++y)"),
            std::string::npos);
  EXPECT_NE(Code.find("A(y, x) = f_S1(IN(y, x-1), IN(y, x));"),
            std::string::npos);
  EXPECT_NE(Code.find("OUT(y, x) = f_S2(A(y, x), A(y, x+1));"),
            std::string::npos);
}

TEST(CPrinter, IndentationTracksNesting) {
  auto R = parser::parseLoopChain(ChainSource);
  ASSERT_TRUE(R) << R.Error;
  Graph G = buildGraph(*R.Chain);
  PrintOptions Options;
  Options.Indent = 4;
  std::string Code = printC(G, *generate(G), Options);
  EXPECT_NE(Code.find("\n    for (int x"), std::string::npos);
  EXPECT_NE(Code.find("\n        A(y, x)"), std::string::npos);
}

TEST(CPrinter, GuardsRenderBoundsOfShiftedMembers) {
  auto R = parser::parseLoopChain(ChainSource);
  ASSERT_TRUE(R) << R.Error;
  Graph G = buildGraph(*R.Chain);
  ASSERT_TRUE(fuseProducerConsumer(G, G.findStmt("S1"), G.findStmt("S2")));
  std::string Code = printC(G, *generate(G));
  EXPECT_NE(Code.find("if (0 <= y && y <= N-1 && 1 <= x && x <= N)"),
            std::string::npos)
      << Code;
  // The shifted consumer writes at x-1.
  EXPECT_NE(Code.find("OUT(y, x-1)"), std::string::npos);
}

TEST(CPrinter, ModuloPlanRewritesTemporaries) {
  auto R = parser::parseLoopChain(ChainSource);
  ASSERT_TRUE(R) << R.Error;
  Graph G = buildGraph(*R.Chain);
  ASSERT_TRUE(fuseProducerConsumer(G, G.findStmt("S1"), G.findStmt("S2")));
  storage::reduceStorage(G);
  storage::StoragePlan Plan = storage::StoragePlan::build(G);
  PrintOptions Options;
  Options.Plan = &Plan;
  std::string Code = printC(G, *generate(G), Options);
  // A collapsed to a two-element modulo buffer; IN/OUT stay symbolic.
  EXPECT_NE(Code.find("% (2)"), std::string::npos) << Code;
  EXPECT_NE(Code.find("IN(y, x)"), std::string::npos);
  EXPECT_NE(Code.find("OUT(y, x-1)"), std::string::npos);
}

TEST(CPrinter, StatementCountsSurviveLowering) {
  auto R = parser::parseLoopChain(ChainSource);
  ASSERT_TRUE(R) << R.Error;
  Graph G = buildGraph(*R.Chain);
  AstPtr Root = generate(G);
  EXPECT_EQ(Root->countStatements(), 2u);
  ASSERT_TRUE(fuseProducerConsumer(G, G.findStmt("S1"), G.findStmt("S2")));
  EXPECT_EQ(generate(G)->countStatements(), 2u);
}
