//===- tests/integration/RandomChainTest.cpp ------------------------------===//
//
// Property/fuzz tests over randomly generated loop chains, crossing every
// layer: graph construction invariants, transformation soundness (any
// schedule the auto-scheduler produces computes the same values), storage
// allocation safety, tiling equivalence, and pragma round-tripping.
//
//===----------------------------------------------------------------------===//

#include "../common/RandomChain.h"

#include "codegen/Generator.h"
#include "graph/AutoScheduler.h"
#include "graph/CostModel.h"
#include "graph/GraphBuilder.h"
#include "parser/PragmaParser.h"
#include "parser/PragmaPrinter.h"
#include "storage/LivenessAllocator.h"
#include "storage/ReuseDistance.h"
#include "storage/StorageMap.h"
#include "tiling/TiledExecutor.h"

#include <gtest/gtest.h>

using namespace lcdfg;
using namespace lcdfg::testutil;

namespace {

using Env = std::map<std::string, std::int64_t, std::less<>>;

RandomChainOptions optionsFor(std::uint64_t Seed) {
  RandomChainOptions Options;
  Options.Seed = Seed;
  Options.Rank = 1 + Seed % 3;
  Options.NumNests = 3 + Seed % 5;
  Options.NumInputs = 1 + Seed % 2;
  return Options;
}

/// Fills inputs deterministically and runs the graph's schedule through
/// the interpreter; returns all persistent-output values.
std::vector<double> interpret(graph::Graph &G,
                              const codegen::KernelRegistry &Kernels,
                              std::int64_t NVal) {
  Env E{{"N", NVal}};
  storage::StoragePlan Plan = storage::StoragePlan::build(G);
  storage::ConcreteStorage Store(Plan, E);
  for (const std::string &Name : G.chain().arrayNames()) {
    if (G.chain().array(Name).Kind != ir::StorageKind::PersistentInput)
      continue;
    G.chain().array(Name).Extent->forEachPoint(
        E, [&](const std::vector<std::int64_t> &P) {
          double V = 1.0;
          for (std::size_t D = 0; D < P.size(); ++D)
            V += 0.01 * static_cast<double>((D + 2) * P[D] + 1);
          Store.at(Name, P) = V;
        });
  }
  codegen::AstPtr Ast = codegen::generate(G);
  codegen::execute(G, *Ast, Kernels, Store, E);
  std::vector<double> Out;
  for (const std::string &Name : G.chain().arrayNames()) {
    if (G.chain().array(Name).Kind != ir::StorageKind::PersistentOutput)
      continue;
    G.chain().array(Name).Extent->forEachPoint(
        E, [&](const std::vector<std::int64_t> &P) {
          Out.push_back(Store.at(Name, P));
        });
  }
  return Out;
}

} // namespace

class RandomChainProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RandomChainProperty, GraphBuildInvariants) {
  ir::LoopChain Chain = randomChain(optionsFor(GetParam()));
  graph::Graph G = graph::buildGraph(Chain);
  G.verify();
  // Every nest lives in exactly one statement node.
  for (unsigned I = 0; I < Chain.numNests(); ++I)
    EXPECT_NE(G.stmtOfNest(I), graph::InvalidNode);
  // Cost is non-negative and S_c bounded by the widest nest.
  graph::CostReport Cost = graph::computeCost(G);
  EXPECT_GE(Cost.TotalRead.evaluate(8), 0);
}

TEST_P(RandomChainProperty, AutoScheduledExecutionMatchesReference) {
  ir::LoopChain Chain = randomChain(optionsFor(GetParam()));
  codegen::KernelRegistry Kernels;
  registerGenericKernels(Chain, Kernels);

  graph::Graph Reference = graph::buildGraph(Chain);
  std::vector<double> Expected = interpret(Reference, Kernels, 6);

  graph::Graph Scheduled = graph::buildGraph(Chain);
  graph::AutoScheduleOptions Options;
  Options.EvalAt = 16;
  graph::AutoScheduleResult R = graph::autoSchedule(Scheduled, Options);
  (void)R;
  Scheduled.verify();
  std::vector<double> Got = interpret(Scheduled, Kernels, 6);

  ASSERT_EQ(Expected.size(), Got.size());
  for (std::size_t I = 0; I < Expected.size(); ++I)
    ASSERT_NEAR(Expected[I], Got[I], 1e-12) << "flat index " << I;
}

TEST_P(RandomChainProperty, AllocatorNeverOverlapsLiveRanges) {
  ir::LoopChain Chain = randomChain(optionsFor(GetParam()));
  graph::Graph G = graph::buildGraph(Chain);
  storage::Allocation A = storage::allocateSpaces(G);

  struct Life {
    int Birth, Death;
  };
  std::map<std::string, Life> L;
  for (graph::NodeId V = 0; V < G.numValueNodes(); ++V) {
    const graph::ValueNode &Value = G.value(V);
    if (Value.Dead || Value.Persistent || G.readersOf(V).empty())
      continue;
    graph::NodeId P = G.producerOf(V);
    if (P == graph::InvalidNode)
      continue;
    Life Entry{G.stmt(P).Row, G.stmt(P).Row};
    for (const graph::Edge *E : G.readersOf(V))
      Entry.Death = std::max(Entry.Death, G.stmt(E->To).Row);
    L[Value.Array] = Entry;
  }
  for (const auto &[NameA, SpaceA] : A.ValueToSpace)
    for (const auto &[NameB, SpaceB] : A.ValueToSpace) {
      if (NameA >= NameB || SpaceA != SpaceB)
        continue;
      const Life &LA = L.at(NameA), &LB = L.at(NameB);
      EXPECT_TRUE(LA.Death < LB.Birth || LB.Death < LA.Birth)
          << NameA << " and " << NameB << " share space " << SpaceA;
    }
  // Fitting: every value fits its space.
  for (const auto &[Name, Space] : A.ValueToSpace)
    EXPECT_FALSE(A.Spaces[Space].Capacity.asymptoticallyLess(
        G.value(G.findValue(Name)).Size))
        << Name;
}

TEST_P(RandomChainProperty, TiledExecutionMatchesUntiled) {
  RandomChainOptions Options = optionsFor(GetParam());
  ir::LoopChain Chain = randomChain(Options);
  codegen::KernelRegistry Kernels;
  registerGenericKernels(Chain, Kernels);
  graph::Graph G = graph::buildGraph(Chain);
  storage::StoragePlan Plan =
      storage::StoragePlan::build(G, /*UseAllocation=*/false);
  tiling::ParamEnv E{{"N", 6}};

  auto Fill = [&](storage::ConcreteStorage &Store) {
    for (const std::string &Name : Chain.arrayNames()) {
      if (Chain.array(Name).Kind != ir::StorageKind::PersistentInput)
        continue;
      Chain.array(Name).Extent->forEachPoint(
          E, [&](const std::vector<std::int64_t> &P) {
            double V = 2.0;
            for (std::size_t D = 0; D < P.size(); ++D)
              V += 0.02 * static_cast<double>(P[D]);
            Store.at(Name, P) = V;
          });
    }
  };
  auto Collect = [&](storage::ConcreteStorage &Store) {
    std::vector<double> Out;
    for (const std::string &Name : Chain.arrayNames()) {
      if (Chain.array(Name).Kind != ir::StorageKind::PersistentOutput)
        continue;
      Chain.array(Name).Extent->forEachPoint(
          E, [&](const std::vector<std::int64_t> &P) {
            Out.push_back(Store.at(Name, P));
          });
    }
    return Out;
  };

  storage::ConcreteStorage Ref(Plan, E);
  Fill(Ref);
  tiling::executeUntiled(Chain, Kernels, Ref, E);
  std::vector<double> Expected = Collect(Ref);

  std::vector<std::int64_t> Tiles(Options.Rank, 3);
  tiling::ChainTiling Tiling = tiling::overlappedTiling(Chain, Tiles, E);
  storage::ConcreteStorage Store(Plan, E);
  Fill(Store);
  tiling::executeTiled(Chain, Tiling, Kernels, Store, E);
  std::vector<double> Got = Collect(Store);

  ASSERT_EQ(Expected.size(), Got.size());
  for (std::size_t I = 0; I < Expected.size(); ++I)
    ASSERT_DOUBLE_EQ(Expected[I], Got[I]) << "flat index " << I;
}

TEST_P(RandomChainProperty, PragmaRoundTrip) {
  ir::LoopChain Chain = randomChain(optionsFor(GetParam()));
  std::string Text = parser::printPragmas(Chain);
  parser::ParseResult R = parser::parseLoopChain(Text);
  ASSERT_TRUE(R) << R.Error << "\n" << Text;
  ASSERT_EQ(Chain.numNests(), R.Chain->numNests());
  for (unsigned I = 0; I < Chain.numNests(); ++I) {
    EXPECT_EQ(Chain.nest(I).Domain, R.Chain->nest(I).Domain);
    EXPECT_EQ(Chain.nest(I).Write.Offsets, R.Chain->nest(I).Write.Offsets);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomChainProperty,
                         ::testing::Range<std::uint64_t>(1, 25));
