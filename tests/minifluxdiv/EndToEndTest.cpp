//===- tests/minifluxdiv/EndToEndTest.cpp ---------------------------------===//
//
// Integration tests crossing every layer: pragma text -> chain -> graph ->
// transforms -> storage -> generated code -> interpreted execution, checked
// against the hand-written kernels.
//
//===----------------------------------------------------------------------===//

#include "codegen/Generator.h"
#include "codegen/Interpreter.h"
#include "graph/CostModel.h"
#include "graph/GraphBuilder.h"
#include "minifluxdiv/Spec.h"
#include "minifluxdiv/Variants.h"
#include "graph/Transforms.h"
#include "parser/PragmaParser.h"
#include "storage/ReuseDistance.h"
#include "storage/StorageMap.h"
#include "tiling/Tiling.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>

using namespace lcdfg;
using namespace lcdfg::graph;

namespace {

/// The x-direction slice of MiniFluxDiv written in the pragma language.
const char *MfdXSource = R"(
#pragma omplc parallel(fuse)
{
#pragma omplc for domain(0:N, 0:N-1) with (x, y) \
    write F1x_rho{(x,y)} \
    read in_rho{(x-2,y),(x-1,y),(x,y),(x+1,y)}
Fx1_rho: F1x_rho(x,y) = flux1(in_rho);

#pragma omplc for domain(0:N, 0:N-1) with (x, y) \
    write F1x_u{(x,y)} read in_u{(x-2,y),(x-1,y),(x,y),(x+1,y)}
Fx1_u: F1x_u(x,y) = flux1(in_u);

#pragma omplc for domain(0:N, 0:N-1) with (x, y) \
    write F2x_rho{(x,y)} read F1x_rho{(x,y)} read F1x_u{(x,y)}
Fx2_rho: F2x_rho(x,y) = F1x_rho(x,y) * F1x_u(x,y);

#pragma omplc for domain(0:N-1, 0:N-1) with (x, y) \
    write out_rho{(x,y)} read F2x_rho{(x,y),(x+1,y)}
Dx_rho: out_rho(x,y) = out_rho(x,y) + K*(F2x_rho(x+1,y)-F2x_rho(x,y));
}
)";

} // namespace

TEST(EndToEnd, ParsedChainMatchesBuilderChain) {
  auto R = parser::parseLoopChain(MfdXSource);
  ASSERT_TRUE(R) << R.Error;
  const ir::LoopChain &Parsed = *R.Chain;
  ir::LoopChain Built = mfd::buildChain2D();

  // The parsed x-slice agrees with the builder's chain on the shared
  // nests: domains, footprints, classifications.
  for (const char *Name : {"Fx1_rho", "Fx2_rho", "Dx_rho"}) {
    unsigned PI = 0, BI = 0;
    for (unsigned I = 0; I < Parsed.numNests(); ++I)
      if (Parsed.nest(I).Name == Name)
        PI = I;
    for (unsigned I = 0; I < Built.numNests(); ++I)
      if (Built.nest(I).Name == Name)
        BI = I;
    EXPECT_EQ(Parsed.nest(PI).Domain, Built.nest(BI).Domain) << Name;
    EXPECT_EQ(Parsed.nest(PI).Write.Offsets, Built.nest(BI).Write.Offsets);
  }
  EXPECT_EQ(Parsed.valueSize("F1x_rho"), Built.valueSize("F1x_rho"));
  EXPECT_EQ(Parsed.array("out_rho").Kind,
            ir::StorageKind::PersistentOutput);
}

TEST(EndToEnd, ParsedChainTransformsAndExecutes) {
  auto R = parser::parseLoopChain(MfdXSource);
  ASSERT_TRUE(R) << R.Error;
  ir::LoopChain Chain = std::move(*R.Chain);

  // Register kernels for the parsed statements.
  codegen::KernelRegistry Kernels;
  int F1 = Kernels.add([](const std::vector<double> &V, double) {
    return mfd::FluxC1 * (V[1] + V[2]) - mfd::FluxC2 * (V[0] + V[3]);
  });
  int F2 = Kernels.add([](const std::vector<double> &V, double) {
    return V[0] * V[1];
  });
  int D = Kernels.add([](const std::vector<double> &V, double Cur) {
    return Cur + mfd::DiffScale * (V[1] - V[0]);
  });
  Chain.nest(0).KernelId = F1;
  Chain.nest(1).KernelId = F1;
  Chain.nest(2).KernelId = F2;
  Chain.nest(3).KernelId = D;

  auto RunGraph = [&](Graph &G) {
    std::map<std::string, std::int64_t, std::less<>> Env{{"N", 6}};
    storage::StoragePlan Plan = storage::StoragePlan::build(G);
    storage::ConcreteStorage Store(Plan, Env);
    for (const std::string A : {"in_rho", "in_u"})
      G.chain().array(A).Extent->forEachPoint(
          Env, [&](const std::vector<std::int64_t> &P) {
            Store.at(A, P) =
                1.0 + 0.01 * static_cast<double>(P[0] * 17 + P[1] * 3);
          });
    codegen::AstPtr Root = codegen::generate(G);
    codegen::execute(G, *Root, Kernels, Store, Env);
    std::vector<double> Out;
    for (std::int64_t Y = 0; Y < 6; ++Y)
      for (std::int64_t X = 0; X < 6; ++X)
        Out.push_back(Store.at("out_rho", {Y, X}));
    return Out;
  };

  Graph Series = buildGraph(Chain);
  std::vector<double> Expected = RunGraph(Series);

  Graph Fused = buildGraph(Chain);
  ASSERT_TRUE(fuseProducerConsumer(Fused, Fused.findStmt("Fx1_rho"),
                                   Fused.findStmt("Fx2_rho")));
  ASSERT_TRUE(fuseProducerConsumer(Fused, Fused.findStmt("Fx1_rho+Fx2_rho"),
                                   Fused.findStmt("Dx_rho")));
  storage::reduceStorage(Fused);
  EXPECT_EQ(Fused.value(Fused.findValue("F2x_rho")).Size.toString(), "2");
  std::vector<double> Got = RunGraph(Fused);

  ASSERT_EQ(Expected.size(), Got.size());
  for (std::size_t I = 0; I < Expected.size(); ++I)
    EXPECT_NEAR(Expected[I], Got[I], 1e-12);
}

TEST(EndToEnd, InterpreterAgreesWithHandKernels3D) {
  // The interpreted 3D series schedule equals the hand-written
  // series-of-loops kernel on the same inputs.
  const int N = 4;
  mfd::Problem P;
  P.BoxSize = N;
  P.NumBoxes = 1;
  std::vector<rt::Box> In = mfd::makeInputs(P, 2024);
  std::vector<rt::Box> Out = mfd::makeOutputs(P);
  mfd::RunConfig Cfg;
  mfd::runVariant(mfd::Variant::SeriesReduced, In, Out, Cfg);

  ir::LoopChain Chain = mfd::buildChain3D();
  codegen::KernelRegistry Kernels;
  mfd::registerKernels(Chain, Kernels);
  Graph G = buildGraph(Chain);
  std::map<std::string, std::int64_t, std::less<>> Env{{"N", N}};
  storage::StoragePlan Plan = storage::StoragePlan::build(G);
  storage::ConcreteStorage Store(Plan, Env);

  const char *Comps[5] = {"rho", "u", "v", "w", "e"};
  for (int C = 0; C < 5; ++C) {
    std::string A = std::string("in_") + Comps[C];
    G.chain().array(A).Extent->forEachPoint(
        Env, [&](const std::vector<std::int64_t> &Pt) {
          Store.at(A, Pt) = In[0].at(C, static_cast<int>(Pt[0]),
                                     static_cast<int>(Pt[1]),
                                     static_cast<int>(Pt[2]));
        });
    for (int Z = 0; Z < N; ++Z)
      for (int Y = 0; Y < N; ++Y)
        for (int X = 0; X < N; ++X)
          Store.at(std::string("out_") + Comps[C], {Z, Y, X}) =
              In[0].at(C, Z, Y, X);
  }
  codegen::AstPtr Root = codegen::generate(G);
  codegen::execute(G, *Root, Kernels, Store, Env);

  for (int C = 0; C < 5; ++C)
    for (int Z = 0; Z < N; ++Z)
      for (int Y = 0; Y < N; ++Y)
        for (int X = 0; X < N; ++X)
          EXPECT_NEAR(Store.at(std::string("out_") + Comps[C], {Z, Y, X}),
                      Out[0].at(C, Z, Y, X), 1e-12)
              << Comps[C] << " " << Z << " " << Y << " " << X;
}

TEST(EndToEnd, CostRankingPredictsMeasuredRanking) {
  // The cost model's S_R ordering for large boxes (series > fuse-all
  // reduced) matches the measured runtime ordering of the hand kernels.
  ir::LoopChain C1 = mfd::buildChain3D();
  Graph Series = buildGraph(C1);
  ir::LoopChain C2 = mfd::buildChain3D();
  Graph FusedAll = buildGraph(C2);
  mfd::applyFuseAllLevels(FusedAll);
  storage::reduceStorage(FusedAll);
  Polynomial SSeries = computeCost(Series).TotalRead;
  Polynomial SFused = computeCost(FusedAll).TotalRead;
  ASSERT_TRUE(SFused.asymptoticallyLess(SSeries));

  mfd::Problem P;
  P.BoxSize = 32;
  P.NumBoxes = 4;
  std::vector<rt::Box> In = mfd::makeInputs(P, 7);
  std::vector<rt::Box> Out = mfd::makeOutputs(P);
  mfd::RunConfig Cfg;

  auto Time = [&](mfd::Variant V) {
    // Warm-up plus best-of-3 to de-noise the single-core container.
    mfd::runVariant(V, In, Out, Cfg);
    double Best = 1e30;
    for (int Rep = 0; Rep < 3; ++Rep) {
      auto T0 = std::chrono::steady_clock::now();
      mfd::runVariant(V, In, Out, Cfg);
      auto T1 = std::chrono::steady_clock::now();
      Best = std::min(Best, std::chrono::duration<double>(T1 - T0).count());
    }
    return Best;
  };
  double TSeries = Time(mfd::Variant::SeriesSA);
  double TFused = Time(mfd::Variant::FuseAllReduced);
  // Allow generous noise margin; the paper's effect at this size is >1.5x.
  EXPECT_LT(TFused, TSeries * 1.1);
}
