//===- tests/minifluxdiv/VariantsTest.cpp ---------------------------------===//

#include "minifluxdiv/Variants.h"

#include "baselines/HalideStyle.h"
#include "baselines/PolyMageStyle.h"
#include "minifluxdiv/Verify.h"

#include <gtest/gtest.h>

using namespace lcdfg;
using namespace lcdfg::mfd;

TEST(Variants, Naming) {
  EXPECT_STREQ(variantName(Variant::SeriesSA), "series-SA");
  EXPECT_STREQ(variantName(Variant::OverlapWithinTiles),
               "overlap-fusionWithinTiles");
  EXPECT_EQ(allVariants().size(), 9u);
}

TEST(Variants, ProblemScaling) {
  Problem Small = Problem::smallBoxes(1 << 20);
  EXPECT_EQ(Small.BoxSize, 16);
  EXPECT_EQ(Small.NumBoxes, 256);
  EXPECT_EQ(Small.totalCells(), 1L << 20);
  Problem Large = Problem::largeBoxes(1 << 20, 64);
  EXPECT_EQ(Large.BoxSize, 64);
  EXPECT_EQ(Large.NumBoxes, 4);
  // Degenerate request still yields one box.
  EXPECT_EQ(Problem::largeBoxes(1, 64).NumBoxes, 1);
}

TEST(Variants, TemporaryElementsOrdering) {
  // The storage ranking the paper's Figure 10 relies on: SA > reduced,
  // and the tiled fuse-all variant is smallest.
  for (int N : {16, 64}) {
    EXPECT_GT(temporaryElements(Variant::SeriesSA, N),
              temporaryElements(Variant::SeriesReduced, N));
    EXPECT_GT(temporaryElements(Variant::FuseAllSA, N),
              temporaryElements(Variant::FuseAllReduced, N));
    EXPECT_GT(temporaryElements(Variant::FuseWithinSA, N),
              temporaryElements(Variant::FuseWithinReduced, N));
    EXPECT_GT(temporaryElements(Variant::FuseAllReduced, N),
              temporaryElements(Variant::OverlapWithinTiles, N));
    EXPECT_GT(temporaryElements(Variant::OverlapOfTiles, N),
              temporaryElements(Variant::OverlapWithinTiles, N));
  }
}

using VariantAndSize = std::tuple<Variant, int>;

class VariantCorrectness
    : public ::testing::TestWithParam<VariantAndSize> {};

TEST_P(VariantCorrectness, MatchesReference) {
  auto [V, Size] = GetParam();
  // Sizes cover even, odd, prime, and non-power-of-two boxes: partial
  // tiles, prologue paths, and carry-buffer wrap-arounds all trigger.
  Problem P;
  P.BoxSize = Size;
  P.NumBoxes = Size <= 8 ? 2 : 1;
  // The fused variants apply the three direction updates in one rounding
  // where the series applies three; against near-cancelling outputs the
  // relative deviation reaches a few 1e-12, so this sweep allows 1e-10.
  VerifyResult R = verifyVariant(V, P, 1e-10, 0xabcd + Size);
  EXPECT_TRUE(R.Pass) << variantName(R.V) << " N=" << Size
                      << " max rel diff " << R.MaxRelDiff;
}

static std::string
variantSizeName(const ::testing::TestParamInfo<VariantAndSize> &Info) {
  std::string Name = variantName(std::get<0>(Info.param));
  for (char &C : Name)
    if (C == '-')
      C = '_';
  return Name + "_N" + std::to_string(std::get<1>(Info.param));
}

INSTANTIATE_TEST_SUITE_P(All, VariantCorrectness,
                         ::testing::Combine(
                             ::testing::ValuesIn(allVariants()),
                             ::testing::Values(5, 8, 11, 13, 20)),
                         variantSizeName);

TEST(Variants, MultiThreadedRunsMatchSerial) {
  Problem P;
  P.BoxSize = 8;
  P.NumBoxes = 8;
  std::vector<rt::Box> In = makeInputs(P, 99);
  std::vector<rt::Box> Serial = makeOutputs(P);
  std::vector<rt::Box> Parallel = makeOutputs(P);
  RunConfig One, Four;
  One.Threads = 1;
  Four.Threads = 4;
  runVariant(Variant::FuseAllReduced, In, Serial, One);
  runVariant(Variant::FuseAllReduced, In, Parallel, Four);
  for (int B = 0; B < P.NumBoxes; ++B)
    EXPECT_EQ(rt::maxRelDiff(Serial[B], Parallel[B]), 0.0);
}

TEST(Variants, TileSizeSweepStaysCorrect) {
  Problem P;
  P.BoxSize = 12;
  P.NumBoxes = 1;
  std::vector<rt::Box> In = makeInputs(P, 5);
  std::vector<rt::Box> Ref = makeOutputs(P);
  RunConfig Cfg;
  runVariant(Variant::SeriesReduced, In, Ref, Cfg);
  for (int T : {2, 3, 5, 12, 16}) {
    std::vector<rt::Box> Got = makeOutputs(P);
    RunConfig Tiled;
    Tiled.TileSize = T;
    runVariant(Variant::OverlapWithinTiles, In, Got, Tiled);
    EXPECT_LE(rt::maxRelDiff(Ref[0], Got[0]), 1e-12) << "tile " << T;
    std::vector<rt::Box> Got2 = makeOutputs(P);
    runVariant(Variant::OverlapOfTiles, In, Got2, Tiled);
    EXPECT_LE(rt::maxRelDiff(Ref[0], Got2[0]), 1e-12) << "tile " << T;
  }
}

TEST(Baselines, HalideStyleMatchesReference) {
  Problem P;
  P.BoxSize = 10;
  P.NumBoxes = 2;
  std::vector<rt::Box> In = makeInputs(P, 123);
  std::vector<rt::Box> Ref = makeOutputs(P);
  std::vector<rt::Box> Got = makeOutputs(P);
  RunConfig Cfg;
  runVariant(Variant::SeriesReduced, In, Ref, Cfg);
  baselines::runHalideStyle(In, Got, /*Threads=*/2);
  for (int B = 0; B < P.NumBoxes; ++B)
    EXPECT_LE(rt::maxRelDiff(Ref[B], Got[B]), 1e-12);
}

TEST(Baselines, PolyMageStyleMatchesReference) {
  Problem P;
  P.BoxSize = 10;
  P.NumBoxes = 2;
  std::vector<rt::Box> In = makeInputs(P, 321);
  std::vector<rt::Box> Ref = makeOutputs(P);
  std::vector<rt::Box> Got = makeOutputs(P);
  RunConfig Cfg;
  runVariant(Variant::SeriesReduced, In, Ref, Cfg);
  baselines::runPolyMageStyle(In, Got, /*Threads=*/2);
  for (int B = 0; B < P.NumBoxes; ++B)
    EXPECT_LE(rt::maxRelDiff(Ref[B], Got[B]), 1e-12);
}

TEST(Verify, AllVariantsReport) {
  Problem P;
  P.BoxSize = 8;
  P.NumBoxes = 1;
  std::string Report;
  EXPECT_TRUE(verifyAll(P, Report));
  EXPECT_NE(Report.find("series-SA"), std::string::npos);
  EXPECT_NE(Report.find("PASS"), std::string::npos);
  EXPECT_EQ(Report.find("FAIL"), std::string::npos);
}
