//===- tests/minifluxdiv/SpecGraphTest.cpp --------------------------------===//

#include "minifluxdiv/Spec.h"

#include "graph/CostModel.h"
#include "graph/GraphBuilder.h"
#include "storage/LivenessAllocator.h"
#include "storage/ReuseDistance.h"

#include <gtest/gtest.h>

using namespace lcdfg;
using namespace lcdfg::graph;

TEST(SpecGraph, FuseAmongLayout) {
  ir::LoopChain Chain = mfd::buildChain2D();
  Graph G = buildGraph(Chain);
  mfd::applyFuseAmongDirections(G);
  // Figure 7: three statement rows (fused F1, the F2s, fused D).
  EXPECT_EQ(G.maxRow(), 3);
  unsigned Live = 0;
  for (NodeId S = 0; S < G.numStmtNodes(); ++S)
    Live += G.stmt(S).Dead ? 0 : 1;
  // 4 fused F1 + 8 F2 + 4 fused D.
  EXPECT_EQ(Live, 16u);
  // No storage-reduction opportunities: nothing internalized (the paper
  // implemented only the SA version of this schedule).
  for (NodeId V = 0; V < G.numValueNodes(); ++V)
    EXPECT_FALSE(G.value(V).Internalized);
}

TEST(SpecGraph, FuseWithinLayout) {
  ir::LoopChain Chain = mfd::buildChain2D();
  Graph G = buildGraph(Chain);
  mfd::applyFuseWithinDirections(G);
  // Figure 8: velocity F1, fused x row, velocity F1, fused y row.
  EXPECT_EQ(G.maxRow(), 4);
  NodeId VelX = G.findStmt("Fx1_u");
  ASSERT_NE(VelX, InvalidNode);
  EXPECT_EQ(G.stmt(VelX).Row, 1);
  NodeId VelY = G.findStmt("Fy1_v");
  ASSERT_NE(VelY, InvalidNode);
  EXPECT_EQ(G.stmt(VelY).Row, 3);
  // Internalized: F1 and F2 of non-velocity statements, per direction.
  EXPECT_TRUE(G.value(G.findValue("F1x_rho")).Internalized);
  EXPECT_TRUE(G.value(G.findValue("F2x_u")).Internalized);
  EXPECT_FALSE(G.value(G.findValue("F1x_u")).Internalized);
}

TEST(SpecGraph, FuseAllLayout) {
  ir::LoopChain Chain = mfd::buildChain2D();
  Graph G = buildGraph(Chain);
  mfd::applyFuseAllLevels(G);
  // Figure 9: velocity fluxes in row 1, one big fused node in row 2.
  EXPECT_EQ(G.maxRow(), 2);
  unsigned Live = 0;
  NodeId Big = InvalidNode;
  for (NodeId S = 0; S < G.numStmtNodes(); ++S) {
    if (G.stmt(S).Dead)
      continue;
    ++Live;
    if (G.stmt(S).Row == 2)
      Big = S;
  }
  EXPECT_EQ(Live, 3u); // Fx1_u, Fy1_v, and the big node
  ASSERT_NE(Big, InvalidNode);
  // The big node contains the remaining 22 statement sets.
  EXPECT_EQ(G.stmt(Big).Nests.size(), 22u);
}

TEST(SpecGraph, FuseAll3DWorksToo) {
  ir::LoopChain Chain = mfd::buildChain3D();
  Graph G = buildGraph(Chain);
  mfd::applyFuseAllLevels(G);
  storage::reduceStorage(G);
  G.verify();
  // 3 velocity nodes plus the big fused node.
  unsigned Live = 0;
  for (NodeId S = 0; S < G.numStmtNodes(); ++S)
    Live += G.stmt(S).Dead ? 0 : 1;
  EXPECT_EQ(Live, 4u);
  // The z-direction complete flux needs a plane buffer.
  Polynomial F2z = G.value(G.findValue("F2z_e")).Size;
  EXPECT_EQ(F2z.degree(), 2u);
  // x stays two scalars.
  EXPECT_EQ(G.value(G.findValue("F2x_e")).Size.toString(), "2");
}

TEST(SpecGraph, AllocatorPairsWellWithFuseAll) {
  ir::LoopChain Chain = mfd::buildChain3D();
  Graph G = buildGraph(Chain);
  mfd::applyFuseAllLevels(G);
  storage::reduceStorage(G);
  storage::Allocation A = storage::allocateSpaces(G);
  // Dominant storage: the three velocity face arrays (N^3 + N^2 each).
  EXPECT_EQ(A.Total.degree(), 3u);
  EXPECT_EQ(A.Total.coeff(3), 3);
  // With only two schedule rows left there is nothing to time-multiplex:
  // the shared-space total equals the single-assignment total, which the
  // reuse-distance reduction already shrank from 30 N^3-sized arrays.
  EXPECT_FALSE(A.SsaTotal.asymptoticallyLess(A.Total));
}

TEST(SpecGraph, CostsScaleFrom2DTo3D) {
  ir::LoopChain Chain = mfd::buildChain3D();
  Graph G = buildGraph(Chain);
  CostReport Cost = computeCost(G);
  // Series of loops in 3D: inputs (N^3+4N^2) read twice... 10 components
  // of structure aside, the leading term is cubic and S_c stays 2.
  EXPECT_EQ(Cost.TotalRead.degree(), 3u);
  EXPECT_EQ(Cost.MaxStreams, 2u);
}
