//===- tools/bench_compare.cpp - Bench regression gate --------------------===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
// Diffs a fresh benchmark run against a committed BENCH_*.json baseline
// (the flat variant -> key -> seconds format bench::JsonReport writes) and
// exits nonzero when any timing regressed beyond the tolerance, so ci.sh
// can gate on the repo's own perf history.
//
//   bench_compare [--tolerance=F] [--floor=S] [--optional=PREFIX]
//                 <baseline.json> <fresh.json>
//     --tolerance=F     allowed relative slowdown before a row fails
//                       (default 0.15 = 15%)
//     --floor=S         baseline rows faster than S seconds are reported
//                       but never gated — sub-floor timings are scheduler
//                       noise (default 0.0002)
//     --optional=PREFIX variants whose name starts with PREFIX are gated
//                       only when the fresh report has them at all
//                       (default "jit-": JIT rows exist only on machines
//                       with a reachable host compiler, and their absence
//                       must not fail the gate)
//
// Rules: every (variant, key) row of the baseline must exist in the fresh
// report (a vanished row fails — a renamed benchmark must update its
// baseline); the "_meta" block is informational and ignored; rows new in
// the fresh report are listed but do not gate; keys starting with "idle"
// carry idle-share ratios rather than seconds (the scheduler head-to-head
// rows) and are printed for trend-watching but never gated or counted;
// variants matching the optional prefix that vanished wholesale are
// reported as skips, not misses.
//
//===----------------------------------------------------------------------===//

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

using Report = std::map<std::string, std::map<std::string, double>>;

/// Minimal recursive-descent parser for the JsonReport subset: one object
/// of objects whose leaf values are numbers (non-numeric leaves, like the
/// "_meta" strings, parse but are dropped).
class Parser {
public:
  explicit Parser(std::string TextIn)
      : Text(std::move(TextIn)), P(Text.c_str()), End(P + Text.size()) {}

  bool parse(Report &Out) {
    ws();
    if (!consume('{'))
      return false;
    ws();
    if (consume('}'))
      return true;
    do {
      std::string Variant;
      if (!parseString(Variant) || !expectColon())
        return false;
      std::map<std::string, double> Keys;
      if (!parseInner(Keys))
        return false;
      Out[Variant] = std::move(Keys);
      ws();
    } while (consume(','));
    ws();
    return consume('}') && (ws(), P == End);
  }

private:
  std::string Text;
  const char *P;
  const char *End;

  void ws() {
    while (P < End && std::isspace(static_cast<unsigned char>(*P)))
      ++P;
  }

  bool consume(char C) {
    if (P < End && *P == C) {
      ++P;
      return true;
    }
    return false;
  }

  bool expectColon() {
    ws();
    return consume(':');
  }

  bool parseString(std::string &Out) {
    ws();
    if (!consume('"'))
      return false;
    Out.clear();
    while (P < End && *P != '"') {
      if (*P == '\\' && P + 1 < End)
        ++P;
      Out += *P++;
    }
    return consume('"');
  }

  bool parseInner(std::map<std::string, double> &Out) {
    ws();
    if (!consume('{'))
      return false;
    ws();
    if (consume('}'))
      return true;
    do {
      std::string Key;
      if (!parseString(Key) || !expectColon())
        return false;
      ws();
      if (P < End && *P == '"') {
        std::string Ignored; // string leaf (a "_meta" field)
        if (!parseString(Ignored))
          return false;
      } else {
        char *NumEnd = nullptr;
        double V = std::strtod(P, &NumEnd);
        if (NumEnd == P || NumEnd > End)
          return false;
        P = NumEnd;
        Out[Key] = V;
      }
      ws();
    } while (consume(','));
    ws();
    return consume('}');
  }
};

bool readReport(const char *Path, Report &Out) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "bench_compare: cannot read %s\n", Path);
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  Parser P(SS.str());
  if (!P.parse(Out)) {
    std::fprintf(stderr, "bench_compare: %s is not a bench report\n", Path);
    return false;
  }
  return true;
}

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--tolerance=F] [--floor=S] [--optional=PREFIX] "
               "<baseline.json> <fresh.json>\n",
               Argv0);
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  double Tolerance = 0.15;
  double Floor = 0.0002;
  std::string OptionalPrefix = "jit-";
  std::vector<const char *> Paths;
  for (int I = 1; I < argc; ++I) {
    if (std::strncmp(argv[I], "--tolerance=", 12) == 0) {
      Tolerance = std::atof(argv[I] + 12);
      if (Tolerance < 0)
        return usage(argv[0]);
    } else if (std::strncmp(argv[I], "--floor=", 8) == 0) {
      Floor = std::atof(argv[I] + 8);
    } else if (std::strncmp(argv[I], "--optional=", 11) == 0) {
      OptionalPrefix = argv[I] + 11;
    } else if (argv[I][0] == '-') {
      return usage(argv[0]);
    } else {
      Paths.push_back(argv[I]);
    }
  }
  if (Paths.size() != 2)
    return usage(argv[0]);

  Report Base, Fresh;
  if (!readReport(Paths[0], Base) || !readReport(Paths[1], Fresh))
    return 1;

  int Failures = 0, Rows = 0, Skipped = 0;
  std::printf("bench_compare: %s vs %s (tolerance %.0f%%)\n", Paths[0],
              Paths[1], Tolerance * 100.0);
  for (const auto &[Variant, Keys] : Base) {
    if (Variant == "_meta")
      continue;
    const auto FreshVariant = Fresh.find(Variant);
    // First-appearance/optional rows: a variant carrying the optional
    // prefix sets a baseline when present but is a skip — not a miss —
    // when the fresh run could not produce it at all.
    if (!OptionalPrefix.empty() &&
        Variant.compare(0, OptionalPrefix.size(), OptionalPrefix) == 0 &&
        FreshVariant == Fresh.end()) {
      std::printf("  skip  %-40s optional variant absent from fresh run "
                  "[not gated]\n",
                  Variant.c_str());
      ++Skipped;
      continue;
    }
    for (const auto &[Key, BaseS] : Keys) {
      const std::string Row = Variant + "." + Key;
      if (Key.rfind("idle", 0) == 0) {
        // Idle-share ratio, not a timing: informational only.
        const bool Have =
            FreshVariant != Fresh.end() &&
            FreshVariant->second.find(Key) != FreshVariant->second.end();
        std::printf("  info  %-40s base %.3f fresh %s [idle share, not "
                    "gated]\n",
                    Row.c_str(), BaseS,
                    Have ? std::to_string(FreshVariant->second.at(Key))
                               .c_str()
                         : "(missing)");
        continue;
      }
      ++Rows;
      if (FreshVariant == Fresh.end() ||
          FreshVariant->second.find(Key) == FreshVariant->second.end()) {
        std::printf("  MISS  %-40s baseline %.6gs has no fresh row\n",
                    Row.c_str(), BaseS);
        ++Failures;
        continue;
      }
      const double FreshS = FreshVariant->second.at(Key);
      const double Ratio = BaseS > 0 ? FreshS / BaseS : 1.0;
      const bool UnderFloor = BaseS < Floor;
      const bool Regressed = !UnderFloor && FreshS > BaseS * (1.0 + Tolerance);
      if (Regressed)
        ++Failures;
      if (UnderFloor)
        ++Skipped;
      std::printf("  %s %-40s base %.6gs fresh %.6gs (%.2fx)%s\n",
                  Regressed ? "FAIL " : "ok   ", Row.c_str(), BaseS, FreshS,
                  Ratio, UnderFloor ? " [under floor, not gated]" : "");
    }
  }
  for (const auto &[Variant, Keys] : Fresh) {
    if (Variant == "_meta")
      continue;
    for (const auto &[Key, S] : Keys)
      if (Base.find(Variant) == Base.end() ||
          Base.at(Variant).find(Key) == Base.at(Variant).end())
        std::printf("  new   %s.%s: %.6gs (not in baseline, not gated)\n",
                    Variant.c_str(), Key.c_str(), S);
  }

  std::printf("bench_compare: %d row(s), %d regression(s), %d under floor\n",
              Rows, Failures, Skipped);
  return Failures ? 1 : 0;
}
