//===- tools/lcdfg-lint.cpp - Static legality sweep -----------------------===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
// Runs the static legality verifier over the repository's schedule corpus:
// every example chain (original, scripted, auto-scheduled, storage-reduced,
// widened, and overlap-tiled lowerings) and every MiniFluxDiv recipe. Each
// lowering is compiled to an ExecutionPlan and checked for storage
// clobbers, static races, batching-cap safety, lost dependences, and tile
// privatization holes.
//
//   lcdfg-lint [--strict] [--json] [--trace] [--jit-static] [--size=N]
//              [<chains-dir>]
//     --strict   exit nonzero when any configuration reports an ERROR
//     --json     emit one JSON object per line instead of text
//     --trace    execute each statically-clean configuration with the span
//                tracer armed — wavefront at two threads as the reference,
//                then the list scheduler at 1/2/4 threads — folding the
//                trace conformance check (obs::checkTrace) and the
//                scheduler output bit-compare (T007) into its report
//     --jit-static
//                statically validate every JIT emission each configuration
//                would compile (verify::KernelVerifier, K codes) — purely
//                symbolic, no host compiler is invoked
//     --size=N   concrete size for the chain-file sweeps (default 8)
//
//===----------------------------------------------------------------------===//

#include "codegen/Generator.h"
#include "exec/ExecutionPlan.h"
#include "graph/AutoScheduler.h"
#include "graph/GraphBuilder.h"
#include "exec/PlanRunner.h"
#include "minifluxdiv/Spec.h"
#include "obs/Trace.h"
#include "obs/TraceCheck.h"
#include "parser/PragmaParser.h"
#include "parser/ScriptRunner.h"
#include "storage/ReuseDistance.h"
#include "storage/StorageMap.h"
#include "support/Status.h"
#include "tiling/Tiling.h"
#include "verify/KernelVerifier.h"
#include "verify/PlanVerifier.h"

#include <algorithm>
#include <functional>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

using namespace lcdfg;

namespace {

/// Batched form of the synthetic stand-in body used for parsed chains
/// (same shape as lcdfg-opt's): sum of reads accumulated into the target.
template <int Arity>
void batchedSum(double *W, const double *const *R, const std::int64_t *S,
                std::int64_t WS, std::int64_t N) {
  for (std::int64_t I = 0; I < N; ++I) {
    double Sum = W[I * WS];
    for (int J = 0; J < Arity; ++J)
      Sum += R[J][I * S[J]];
    W[I * WS] = Sum;
  }
}

codegen::BatchedKernel batchedSumForArity(std::size_t Arity) {
  static constexpr codegen::BatchedKernel Table[] = {
      batchedSum<0>, batchedSum<1>, batchedSum<2>, batchedSum<3>,
      batchedSum<4>, batchedSum<5>, batchedSum<6>, batchedSum<7>,
      batchedSum<8>};
  return Arity < sizeof(Table) / sizeof(Table[0]) ? Table[Arity] : nullptr;
}

/// Assigns synthetic kernels (scalar + batched) to every nest of a parsed
/// chain that has none.
void assignSyntheticKernels(ir::LoopChain &Chain,
                            codegen::KernelRegistry &Kernels) {
  std::map<std::size_t, int> ByArity;
  for (unsigned N = 0; N < Chain.numNests(); ++N) {
    if (Chain.nest(N).KernelId >= 0)
      continue;
    std::size_t Arity = 0;
    for (const ir::Access &A : Chain.nest(N).Reads)
      Arity += A.Offsets.size();
    auto It = ByArity.find(Arity);
    if (It == ByArity.end()) {
      codegen::KernelExpr E = codegen::current();
      for (std::size_t J = 0; J < Arity; ++J)
        E = E + codegen::read(static_cast<unsigned>(J));
      int Id = Kernels.add(
          [](const std::vector<double> &Reads, double Current) {
            double Sum = Current;
            for (double R : Reads)
              Sum += R;
            return Sum;
          },
          batchedSumForArity(Arity), std::move(E));
      It = ByArity.emplace(Arity, Id).first;
    }
    Chain.nest(N).KernelId = It->second;
  }
}

struct LintReport {
  bool Json = false;
  int Runs = 0;
  int RunsWithErrors = 0;
  int CompileFailures = 0;
  std::size_t Errors = 0, Warnings = 0, Notes = 0;

  /// A configuration whose lowering itself failed: the recipe could not be
  /// compiled to a plan at all. Reported in the common Status vocabulary
  /// (E00x code + context chain) rather than aborting the sweep.
  void fail(const std::string &Name, const support::Status &S) {
    ++Runs;
    ++RunsWithErrors;
    ++CompileFailures;
    if (Json) {
      std::printf("{\"config\":\"%s\",\"error\":%s}\n", Name.c_str(),
                  S.toJson().c_str());
      return;
    }
    std::printf("FAIL  %s\n      %s\n", Name.c_str(), S.toString().c_str());
  }

  void add(const std::string &Name, const verify::Diagnostics &Diags) {
    ++Runs;
    if (Diags.hasErrors())
      ++RunsWithErrors;
    Errors += Diags.count(verify::Severity::Error);
    Warnings += Diags.count(verify::Severity::Warning);
    Notes += Diags.count(verify::Severity::Note);
    if (Json) {
      std::printf("{\"config\":\"%s\",\"report\":%s}\n", Name.c_str(),
                  Diags.toJson().c_str());
      return;
    }
    if (Diags.all().empty()) {
      std::printf("ok    %s\n", Name.c_str());
      return;
    }
    std::printf("%s %s\n", Diags.hasErrors() ? "FAIL " : "warn ",
                Name.c_str());
    for (const verify::Diagnostic &D : Diags.all())
      std::printf("      %s\n", D.toString().c_str());
  }
};

/// Runs one configuration's verification, folding a lowering failure
/// (thrown StatusError) into the report as a structured compile failure
/// instead of letting it abort the whole sweep.
void addGuarded(LintReport &Report, const std::string &Name,
                const std::function<verify::Diagnostics()> &Fn) {
  try {
    Report.add(Name, Fn());
  } catch (const support::StatusError &E) {
    Report.fail(Name, E.status());
  }
}

/// Dynamic conformance pass: executes an already-verified plan with the
/// span tracer armed and folds obs::checkTrace's verdict into the
/// configuration's diagnostics. Persistent inputs are seeded with the same
/// deterministic pattern lcdfg-opt uses so kernels never consume
/// uninitialized storage.
///
/// The pass doubles as the scheduler bit-compare gate: the wavefront
/// strategy at two threads is the reference, then the list scheduler runs
/// at T in {1, 2, 4} on a restored copy of the seeded store. Every run's
/// trace is checked against the plan's dependence closure (T001-T006), and
/// any bitwise output divergence between the strategies — which, both
/// being dependence-respecting, can only be a data race — is reported as a
/// T007-scheduler-divergence error.
void traceCheckRun(const ir::LoopChain &Chain, const exec::ExecutionPlan &Plan,
                   const codegen::KernelRegistry &Kernels,
                   storage::ConcreteStorage &Store,
                   verify::Diagnostics &Diags) {
  for (const std::string &Name : Chain.arrayNames())
    if (Chain.array(Name).Kind == ir::StorageKind::PersistentInput) {
      std::vector<double> &Buf = Store.spaceOf(Name);
      for (std::size_t I = 0; I < Buf.size(); ++I)
        Buf[I] = 0.001 * static_cast<double>((I * 2654435761u) % 1000u);
    }
  std::vector<std::vector<double>> Seeded;
  Seeded.reserve(Store.numSpaces());
  for (std::size_t S = 0; S < Store.numSpaces(); ++S)
    Seeded.push_back(Store.space(S));
  auto Restore = [&] {
    for (std::size_t S = 0; S < Seeded.size(); ++S)
      Store.space(S) = Seeded[S];
  };

  obs::Tracer &Tr = obs::Tracer::global();
  // One traced execution under the given strategy/threads; folds the trace
  // conformance verdict into Diags.
  auto TracedRun = [&](exec::SchedulerKind Sched, int Threads,
                       exec::KernelMode Mode = exec::KernelMode::Interp) {
    Tr.enable();
    exec::RunOptions Opts;
    Opts.Threads = Threads;
    Opts.Scheduler = Sched;
    Opts.Kernels = Mode;
    try {
      exec::runPlan(Plan, Kernels, Store, Opts);
    } catch (...) {
      // Leave the tracer clean for the next configuration before the guard
      // folds the failure into the report as a compile/run failure.
      (void)Tr.drain();
      Tr.disable();
      throw;
    }
    obs::Trace T = Tr.drain();
    Tr.disable();
    verify::Diagnostics TDiags = obs::checkTrace(Plan, T);
    for (const verify::Diagnostic &D : TDiags.all())
      Diags.add(verify::Diagnostic(D));
  };

  TracedRun(exec::SchedulerKind::Wavefront, 2);
  std::vector<std::vector<double>> Reference;
  Reference.reserve(Store.numSpaces());
  for (std::size_t S = 0; S < Store.numSpaces(); ++S)
    Reference.push_back(Store.space(S));

  for (int Threads : {1, 2, 4}) {
    Restore();
    TracedRun(exec::SchedulerKind::List, Threads);
    // Only persistent spaces are observable: a scratch temporary's final
    // contents are whatever its LAST writer left, and the two strategies
    // legally order independent writers differently (tile-parallel runs
    // even share participant 0's buffers with the store).
    for (std::size_t S = 0; S < Store.numSpaces(); ++S) {
      if (S < Plan.SpacePersistent.size() && !Plan.SpacePersistent[S])
        continue;
      if (std::memcmp(Store.space(S).data(), Reference[S].data(),
                      Reference[S].size() * sizeof(double)) != 0) {
        verify::Diagnostic D;
        D.Sev = verify::Severity::Error;
        D.CheckId = obs::CheckSchedulerDivergence;
        D.Message = "list scheduler at " + std::to_string(Threads) +
                    " thread(s) diverged from the wavefront reference in "
                    "space " +
                    std::to_string(S);
        Diags.add(std::move(D));
        break;
      }
    }
  }

  // JIT bit-compare legs: the same T in {1, 2, 4} sweep with --kernels=jit
  // forced, against the same interpreted reference. The JIT is best-effort
  // by contract (statements it cannot specialize keep interpreted bodies),
  // so these legs stay green on compiler-less machines — what they gate is
  // that any kernel the JIT *did* specialize is bit-identical.
  for (int Threads : {1, 2, 4}) {
    Restore();
    TracedRun(exec::SchedulerKind::List, Threads, exec::KernelMode::Jit);
    for (std::size_t S = 0; S < Store.numSpaces(); ++S) {
      if (S < Plan.SpacePersistent.size() && !Plan.SpacePersistent[S])
        continue;
      if (std::memcmp(Store.space(S).data(), Reference[S].data(),
                      Reference[S].size() * sizeof(double)) != 0) {
        verify::Diagnostic D;
        D.Sev = verify::Severity::Error;
        D.CheckId = obs::CheckJitDivergence;
        D.Message = "jit kernels at " + std::to_string(Threads) +
                    " thread(s) diverged from the interpreted reference in "
                    "space " +
                    std::to_string(S);
        Diags.add(std::move(D));
        break;
      }
    }
  }
}

/// Lowers the scheduled graph to an ExecutionPlan and runs every verifier
/// family plus the graph-level schedule check. With a non-null TraceChain
/// a statically-clean plan is additionally executed under the tracer and
/// its trace validated against the plan's dependence closure.
verify::Diagnostics verifyGraph(const graph::Graph &G,
                                const codegen::KernelRegistry &Kernels,
                                std::int64_t SizeN, bool UseAllocation,
                                unsigned Widen, bool JitStatic,
                                const ir::LoopChain *TraceChain = nullptr) {
  exec::ParamEnv Env{{"N", SizeN}};
  storage::StoragePlan SPlan =
      storage::StoragePlan::build(G, UseAllocation, Widen);
  storage::ConcreteStorage Store(SPlan, Env);
  codegen::AstPtr Ast = codegen::generate(G);
  exec::ExecutionPlan Plan = exec::ExecutionPlan::fromAst(G, *Ast, Store, Env);
  verify::VerifyOptions Opts;
  Opts.Kernels = &Kernels;
  verify::PlanVerifier Verifier(Plan, Opts);
  verify::Diagnostics Diags = Verifier.verify();
  verify::checkGraphSchedule(G, Diags);
  if (JitStatic) {
    verify::Diagnostics KDiags = verify::verifyPlanKernels(Plan, Kernels);
    for (const verify::Diagnostic &D : KDiags.all())
      Diags.add(verify::Diagnostic(D));
  }
  if (TraceChain && !Diags.hasErrors())
    traceCheckRun(*TraceChain, Plan, Kernels, Store, Diags);
  return Diags;
}

/// Lowers an overlapped tiling of the untransformed chain and verifies it,
/// including the seed-disjointness cross-check.
verify::Diagnostics verifyTiled(const ir::LoopChain &Chain,
                                const codegen::KernelRegistry &Kernels,
                                std::int64_t SizeN, std::int64_t TileSize,
                                bool TraceRun, bool JitStatic) {
  exec::ParamEnv Env{{"N", SizeN}};
  graph::Graph G = graph::buildGraph(Chain);
  const ir::LoopNest &Last = Chain.nest(Chain.numNests() - 1);
  std::vector<std::int64_t> Sizes(Last.Domain.rank(), TileSize);
  tiling::ChainTiling Tiling = tiling::overlappedTiling(Chain, Sizes, Env);
  storage::StoragePlan SPlan =
      storage::StoragePlan::build(G, /*UseAllocation=*/false);
  storage::ConcreteStorage Store(SPlan, Env);
  exec::ExecutionPlan Plan =
      exec::ExecutionPlan::fromTiling(Chain, Tiling, Store, Env, &G);
  verify::VerifyOptions Opts;
  Opts.Kernels = &Kernels;
  verify::PlanVerifier Verifier(Plan, Opts);
  verify::Diagnostics Diags = Verifier.verify();
  if (JitStatic) {
    verify::Diagnostics KDiags = verify::verifyPlanKernels(Plan, Kernels);
    for (const verify::Diagnostic &D : KDiags.all())
      Diags.add(verify::Diagnostic(D));
  }
  if (!Tiling.seedsDisjoint(Env)) {
    verify::Diagnostic D;
    D.Sev = verify::Severity::Error;
    D.CheckId = verify::CheckTaskRace;
    D.Message = "overlapped tiling has intersecting seed tiles: terminal "
                "writes of different tiles collide";
    Diags.add(std::move(D));
  }
  if (TraceRun && !Diags.hasErrors())
    traceCheckRun(Chain, Plan, Kernels, Store, Diags);
  return Diags;
}

bool readFile(const std::filesystem::path &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

/// Sweeps one .lc chain file through its lowering configurations.
bool sweepChainFile(const std::filesystem::path &Path, std::int64_t SizeN,
                    bool Trace, bool JitStatic, LintReport &Report) {
  std::string Source;
  if (!readFile(Path, Source)) {
    std::fprintf(stderr, "error: cannot read %s\n", Path.c_str());
    return false;
  }
  parser::ParseResult Parsed = parser::parseLoopChain(Source);
  if (!Parsed) {
    std::fprintf(stderr, "%s:%u: error: %s\n", Path.c_str(), Parsed.Line,
                 Parsed.Error.c_str());
    return false;
  }
  ir::LoopChain Chain = std::move(*Parsed.Chain);
  codegen::KernelRegistry Kernels;
  assignSyntheticKernels(Chain, Kernels);
  const std::string Stem = Path.stem().string();
  const ir::LoopChain *TC = Trace ? &Chain : nullptr;

  {
    graph::Graph G = graph::buildGraph(Chain);
    addGuarded(Report, Stem + ":original", [&] {
      return verifyGraph(G, Kernels, SizeN, /*UseAllocation=*/true, 1,
                         JitStatic, TC);
    });
  }

  std::filesystem::path ScriptPath = Path;
  ScriptPath.replace_extension(".script");
  std::string Script;
  if (readFile(ScriptPath, Script)) {
    for (unsigned Widen : {1u, 2u}) {
      graph::Graph G = graph::buildGraph(Chain);
      parser::ScriptResult R = parser::runScript(G, Script);
      if (!R) {
        std::fprintf(stderr, "%s:%u: error: %s\n", ScriptPath.c_str(), R.Line,
                     R.Error.c_str());
        return false;
      }
      storage::reduceStorage(G);
      std::ostringstream Name;
      Name << Stem << ":script-reduced-widen" << Widen;
      addGuarded(Report, Name.str(), [&] {
        return verifyGraph(G, Kernels, SizeN, /*UseAllocation=*/true, Widen,
                           JitStatic, TC);
      });
    }
  }

  {
    graph::Graph G = graph::buildGraph(Chain);
    (void)graph::autoSchedule(G, {});
    storage::reduceStorage(G);
    addGuarded(Report, Stem + ":autoschedule-reduced", [&] {
      return verifyGraph(G, Kernels, SizeN, /*UseAllocation=*/true, 1,
                         JitStatic, TC);
    });
  }

  addGuarded(Report, Stem + ":tiled4", [&] {
    return verifyTiled(Chain, Kernels, SizeN, 4, Trace, JitStatic);
  });
  return true;
}

/// Sweeps the MiniFluxDiv recipes at a small concrete size.
void sweepMiniFluxDiv(bool ThreeD, std::int64_t SizeN, bool Trace,
                      bool JitStatic, LintReport &Report) {
  struct Recipe {
    const char *Name;
    void (*Apply)(graph::Graph &);
    bool Reduce;
    unsigned Widen;
  };
  const Recipe Recipes[] = {
      {"series", nullptr, false, 1},
      {"fuseAmong", mfd::applyFuseAmongDirections, true, 1},
      {"fuseWithin", mfd::applyFuseWithinDirections, true, 1},
      {"fuseWithin-widen2", mfd::applyFuseWithinDirections, true, 2},
      {"fuseAll", mfd::applyFuseAllLevels, true, 1},
      {"fuseAll-widen2", mfd::applyFuseAllLevels, true, 2},
  };
  const char *Prefix = ThreeD ? "mfd3d" : "mfd2d";
  for (const Recipe &R : Recipes) {
    ir::LoopChain Chain = ThreeD ? mfd::buildChain3D() : mfd::buildChain2D();
    codegen::KernelRegistry Kernels;
    mfd::registerKernels(Chain, Kernels);
    graph::Graph G = graph::buildGraph(Chain);
    if (R.Apply)
      R.Apply(G);
    if (R.Reduce)
      storage::reduceStorage(G);
    std::ostringstream Name;
    Name << Prefix << ":" << R.Name;
    addGuarded(Report, Name.str(), [&] {
      return verifyGraph(G, Kernels, SizeN, /*UseAllocation=*/true, R.Widen,
                         JitStatic, Trace ? &Chain : nullptr);
    });
  }
  if (!ThreeD) {
    ir::LoopChain Chain = mfd::buildChain2D();
    codegen::KernelRegistry Kernels;
    mfd::registerKernels(Chain, Kernels);
    graph::Graph G = graph::buildGraph(Chain);
    (void)graph::autoSchedule(G, {});
    storage::reduceStorage(G);
    addGuarded(Report, std::string(Prefix) + ":autoschedule-reduced", [&] {
      return verifyGraph(G, Kernels, SizeN, /*UseAllocation=*/true, 1,
                         JitStatic, Trace ? &Chain : nullptr);
    });
  }
}

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--strict] [--json] [--trace] [--jit-static] [--size=N] "
      "[<chains-dir>]\n",
      Argv0);
  return 2;
}

int runLint(int argc, char **argv) {
  bool Strict = false, Json = false, Trace = false, JitStatic = false;
  std::int64_t SizeN = 8;
  std::string ChainsDir = "examples/chains";

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--strict") {
      Strict = true;
    } else if (Arg == "--json") {
      Json = true;
    } else if (Arg == "--trace") {
      Trace = true;
    } else if (Arg == "--jit-static") {
      JitStatic = true;
    } else if (Arg.rfind("--size=", 0) == 0) {
      SizeN = std::atoll(Arg.c_str() + 7);
      if (SizeN < 2) {
        std::fprintf(stderr, "error: --size must be at least 2\n");
        return 2;
      }
    } else if (!Arg.empty() && Arg[0] == '-') {
      return usage(argv[0]);
    } else {
      ChainsDir = Arg;
    }
  }

  LintReport Report;
  Report.Json = Json;

  std::error_code EC;
  std::vector<std::filesystem::path> ChainFiles;
  for (const auto &Entry :
       std::filesystem::directory_iterator(ChainsDir, EC)) {
    if (Entry.path().extension() == ".lc")
      ChainFiles.push_back(Entry.path());
  }
  if (EC) {
    std::fprintf(stderr, "error: cannot list %s: %s\n", ChainsDir.c_str(),
                 EC.message().c_str());
    return 1;
  }
  std::sort(ChainFiles.begin(), ChainFiles.end());
  for (const std::filesystem::path &Path : ChainFiles)
    if (!sweepChainFile(Path, SizeN, Trace, JitStatic, Report))
      return 1;

  sweepMiniFluxDiv(/*ThreeD=*/false, /*SizeN=*/6, Trace, JitStatic, Report);
  sweepMiniFluxDiv(/*ThreeD=*/true, /*SizeN=*/4, Trace, JitStatic, Report);

  if (!Json)
    std::printf("lint: %d configuration(s), %d with errors (%zu error(s), "
                "%zu warning(s), %zu note(s), %d compile failure(s))\n",
                Report.Runs, Report.RunsWithErrors, Report.Errors,
                Report.Warnings, Report.Notes, Report.CompileFailures);
  // A configuration that would not even compile is a failure regardless of
  // --strict; legality ERRORs gate the exit code only under --strict.
  if (Report.CompileFailures)
    return 1;
  return Strict && Report.RunsWithErrors ? 1 : 0;
}

} // namespace

int main(int argc, char **argv) {
  // Backstop: a StatusError escaping the per-configuration guards (corpus
  // discovery, recipe setup) still exits with a structured JSON diagnostic
  // on stderr instead of std::terminate.
  try {
    return runLint(argc, argv);
  } catch (const support::StatusError &E) {
    std::fprintf(stderr, "{\"error\":%s}\n", E.status().toJson().c_str());
    return 1;
  }
}
