#!/usr/bin/env bash
#===------------------------------------------------------------------------===#
#
# Tier-1 gate: configure, build, and run the full test suite under the
# default (Release) preset and again under ThreadSanitizer, which is what
# keeps the execution layer's tile scheduler honest, then a Release bench
# smoke (exec tests + one quick bench_fig6_small iteration) that catches
# batched-path regressions. Run from the repo root:
#
#   tools/ci.sh            # default + tsan + bench smoke + verify
#   tools/ci.sh default    # just one preset
#   tools/ci.sh asan       # the ASan+UBSan sibling
#   tools/ci.sh bench      # just the bench smoke
#   tools/ci.sh verify     # just the static legality lint
#
# The tsan stage additionally re-runs the execution-layer tests with the
# worker pool capped at 2 and 4 threads, so the scheduler's every
# cross-thread handoff is exercised under the race detector. The verify
# stage sweeps every example chain and MiniFluxDiv recipe through
# lcdfg-lint --strict, which exits nonzero on any legality ERROR.
#
#===------------------------------------------------------------------------===#

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"
PRESETS=("$@")
if [ ${#PRESETS[@]} -eq 0 ]; then
  PRESETS=(default tsan bench verify)
fi

bench_smoke() {
  ./build-bench/tests/test_exec
  local JSON=build-bench/BENCH_smoke.json
  MFD_CELLS=4096 MFD_REPS=1 MFD_THREADS=2 BENCH_JSON="${JSON}" \
    ./build-bench/bench/bench_fig6_small
  grep -q '"fuseAll-reduced"' "${JSON}" && grep -q '"batched_on"' "${JSON}"
  echo "bench smoke: ${JSON} has batched rows"
}

verify_lint() {
  ./build/tools/lcdfg-lint --strict examples/chains
}

for PRESET in "${PRESETS[@]}"; do
  echo "== preset: ${PRESET} =="
  if [ "${PRESET}" = verify ]; then
    cmake --preset default
    cmake --build --preset default -j "${JOBS}" --target lcdfg-lint
    verify_lint
    continue
  fi
  cmake --preset "${PRESET}"
  cmake --build --preset "${PRESET}" -j "${JOBS}"
  if [ "${PRESET}" = bench ]; then
    bench_smoke
  else
    ctest --preset "${PRESET}" -j "${JOBS}"
  fi
  if [ "${PRESET}" = tsan ]; then
    # The ctest pass runs with the pool's default sizing; re-run the
    # execution-layer suite with the worker pool pinned small so handoffs
    # between few workers are the common case TSan watches.
    for T in 2 4; do
      echo "== tsan: test_exec with LCDFG_THREADS=${T} =="
      LCDFG_THREADS="${T}" ./build-tsan/tests/test_exec
    done
  fi
done

echo "ci: all presets green (${PRESETS[*]})"
