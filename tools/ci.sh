#!/usr/bin/env bash
#===------------------------------------------------------------------------===#
#
# Tier-1 gate: configure, build, and run the full test suite under the
# default (Release) preset and again under ThreadSanitizer, which is what
# keeps the execution layer's tile scheduler honest. Run from the repo
# root:
#
#   tools/ci.sh            # default + tsan
#   tools/ci.sh default    # just one preset
#   tools/ci.sh asan       # the ASan+UBSan sibling
#
#===------------------------------------------------------------------------===#

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"
PRESETS=("$@")
if [ ${#PRESETS[@]} -eq 0 ]; then
  PRESETS=(default tsan)
fi

for PRESET in "${PRESETS[@]}"; do
  echo "== preset: ${PRESET} =="
  cmake --preset "${PRESET}"
  cmake --build --preset "${PRESET}" -j "${JOBS}"
  ctest --preset "${PRESET}" -j "${JOBS}"
done

echo "ci: all presets green (${PRESETS[*]})"
