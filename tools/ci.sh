#!/usr/bin/env bash
#===------------------------------------------------------------------------===#
#
# Tier-1 gate: configure, build, and run the full test suite under the
# default (Release) preset and again under ThreadSanitizer, which is what
# keeps the execution layer's tile scheduler honest, then a Release bench
# smoke (exec tests + one quick bench_fig6_small iteration) that catches
# batched-path regressions. Run from the repo root:
#
#   tools/ci.sh            # default + tsan + bench smoke
#   tools/ci.sh default    # just one preset
#   tools/ci.sh asan       # the ASan+UBSan sibling
#   tools/ci.sh bench      # just the bench smoke
#
#===------------------------------------------------------------------------===#

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"
PRESETS=("$@")
if [ ${#PRESETS[@]} -eq 0 ]; then
  PRESETS=(default tsan bench)
fi

bench_smoke() {
  ./build-bench/tests/test_exec
  local JSON=build-bench/BENCH_smoke.json
  MFD_CELLS=4096 MFD_REPS=1 MFD_THREADS=2 BENCH_JSON="${JSON}" \
    ./build-bench/bench/bench_fig6_small
  grep -q '"fuseAll-reduced"' "${JSON}" && grep -q '"batched_on"' "${JSON}"
  echo "bench smoke: ${JSON} has batched rows"
}

for PRESET in "${PRESETS[@]}"; do
  echo "== preset: ${PRESET} =="
  cmake --preset "${PRESET}"
  cmake --build --preset "${PRESET}" -j "${JOBS}"
  if [ "${PRESET}" = bench ]; then
    bench_smoke
  else
    ctest --preset "${PRESET}" -j "${JOBS}"
  fi
done

echo "ci: all presets green (${PRESETS[*]})"
