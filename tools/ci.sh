#!/usr/bin/env bash
#===------------------------------------------------------------------------===#
#
# Tier-1 gate: configure, build, and run the full test suite under the
# default (Release) preset and again under ThreadSanitizer, which is what
# keeps the execution layer's tile scheduler honest, then a Release bench
# smoke (exec tests + one quick bench_fig6_small iteration) that catches
# batched-path regressions. Run from the repo root:
#
#   tools/ci.sh            # default+tsan+ubsan+bench+verify+faults+jit+
#                          #   shard+tidy+coverage
#   tools/ci.sh default    # just one preset
#   tools/ci.sh asan       # the ASan+UBSan sibling
#   tools/ci.sh ubsan      # standalone UBSan, -fno-sanitize-recover=all
#   tools/ci.sh bench      # bench smoke + perf-regression gate
#   tools/ci.sh verify     # static legality lint + JIT translation validation
#   tools/ci.sh faults     # just the fault-injection campaign
#   tools/ci.sh jit        # JIT backend: tests, cache hygiene, dead compiler
#   tools/ci.sh shard      # multi-process sharding: suite under ASan, the
#                          # peer:kill / msg:* fault matrix at 2 and 4
#                          # shards (each must descend to L009 with
#                          # bit-identical recovery), clean 1/2/4-shard
#                          # drills, and the overlap window under TSan
#   tools/ci.sh serve      # plan-serving daemon: protocol/cache/fault
#                          # suites + the 5k soak under ASan+UBSan, the
#                          # connection-multiplexing paths under TSan at
#                          # LCDFG_THREADS=2 and 4, and a process-level
#                          # fault matrix (lcdfg-serve + lcdfg-load --raw)
#                          # grepping the documented E/L codes
#   tools/ci.sh tidy       # clang-tidy over src/ (skips if tool absent)
#   tools/ci.sh coverage   # line-coverage report over
#                          # src/{exec,verify,obs,jit,serve}
#
# The tsan stage additionally re-runs the execution-layer and
# observability tests across the scheduler matrix — LCDFG_SCHED in
# {wavefront, list} times LCDFG_THREADS in {2, 4} — so both task-graph
# strategies see every cross-thread handoff under the race detector. The
# verify stage sweeps every example chain and MiniFluxDiv recipe through
# lcdfg-lint --strict, which exits nonzero on any legality ERROR (and,
# with --trace, bit-compares list-scheduler outputs against the wavefront
# reference).
#
# The faults stage drives the graceful-degradation ladder end to end:
# every LCDFG_FAULT class is injected into `lcdfg-opt --report` (built
# under ASan+UBSan) and must recover with its documented L00x reason code;
# a hardened (redzone + NaN-guard) clean pass must not false-positive; the
# fuzz smoke (10k mutated parses + the transform stress tester) runs under
# ASan; and the injected-exception pool tests re-run under TSan with the
# worker pool pinned to 2 and 4 threads. docs/ROBUSTNESS.md documents the
# codes this stage greps for.
#
# The bench stage additionally re-measures bench_fig6_small and
# bench_tiling_shapes at their full default sizes and diffs the fresh
# timings against the committed BENCH_*.json baselines with
# tools/bench_compare: any row more than BENCH_TOL (default 0.15 = 15%)
# slower than its baseline fails the stage. bench_fig6_large is excluded
# (longest run, same code paths); bench_serve gates at the looser
# BENCH_SERVE_TOL (default 0.5) because request latencies jitter more
# than compute-bound rows. Set BENCH_GATE=off to skip the gate on
# machines whose timings are not comparable to the committed baselines.
#
# The jit stage exercises the host-compiler kernel backend end to end:
# the test_jit suite under the default and ASan+UBSan builds, then three
# process-level checks against a fresh cache directory — a cold run must
# compile (exec.jit.compiled in --metrics), a second identical run must be
# served from the disk cache (exec.jit.cache.hits), and a flag change
# (LCDFG_JIT_FLAGS) must invalidate the key and recompile. Finally a dead
# host compiler (LCDFG_JIT_CC=/bin/false) must degrade through the
# recovery ladder's L008-jit-unavailable rung with a completed run, never
# an error.
#
# The ubsan stage builds the execution, verification, and JIT suites with
# standalone UBSan at -fno-sanitize-recover=all, so any undefined
# behaviour — including in the KernelVerifier's textual parsing and
# symbolic address walk, which chew on adversarial emission text — aborts
# the test instead of sailing past. (The asan preset keeps its combined
# ASan+UBSan role for the fault campaign; this stage is the stricter
# no-recover variant.)
#
# The verify stage also sweeps every example chain through
# `lcdfg-lint --strict --jit-static`, which statically validates the JIT
# kernel emission for each configuration against its plan footprint (the
# K-code checks of docs/KERNEL-VERIFY.md) without invoking any host
# compiler, and checks that `lcdfg-lint --json` emits parseable JSON per
# line (the schema itself is locked byte-for-byte by test_kernel_verify).
#
# The tidy stage runs clang-tidy (config: .clang-tidy) over src/ using
# the compile database exported by the default preset. The tool is not
# part of the baseline toolchain image, so the stage skips gracefully —
# with a visible notice, not a failure — when clang-tidy is absent.
#
# The coverage stage rebuilds the library with --coverage, runs the
# test_exec / test_verify / test_kernel_verify / test_obs / test_jit /
# test_serve suites, and aggregates gcov line coverage per instrumented
# directory; src/obs (the observability layer this repo's traces and
# counters hang off), src/verify (the legality gate), src/jit (the
# kernel-compilation backend), and src/serve (the plan-serving daemon)
# must each stay at >= 80% lines.
#
#===------------------------------------------------------------------------===#

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"
PRESETS=("$@")
if [ ${#PRESETS[@]} -eq 0 ]; then
  PRESETS=(default tsan ubsan bench verify faults jit shard serve tidy
    coverage)
fi

bench_smoke() {
  ./build-bench/tests/test_exec
  local JSON=build-bench/BENCH_smoke.json
  MFD_CELLS=4096 MFD_REPS=1 MFD_THREADS=2 BENCH_JSON="${JSON}" \
    ./build-bench/bench/bench_fig6_small
  grep -q '"fuseAll-reduced"' "${JSON}" && grep -q '"batched_on"' "${JSON}"
  echo "bench smoke: ${JSON} has batched rows"
}

# Perf-regression gate: re-measure the quick benches at their full default
# sizes and require every committed baseline row to stay within BENCH_TOL
# of its recorded time (tools/bench_compare exits nonzero otherwise).
bench_gate() {
  if [ "${BENCH_GATE:-on}" = off ]; then
    echo "bench gate: skipped (BENCH_GATE=off)"
    return 0
  fi
  local TOL="${BENCH_TOL:-0.15}" NAME JSON
  local COMMIT
  COMMIT="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
  for NAME in fig6_small tiling_shapes; do
    JSON="build-bench/BENCH_${NAME}_fresh.json"
    BENCH_JSON="${JSON}" BENCH_COMMIT="${COMMIT}" \
      "./build-bench/bench/bench_${NAME}" >/dev/null
    ./build-bench/tools/bench_compare --tolerance="${TOL}" \
      "BENCH_${NAME}.json" "${JSON}"
  done
  # The serving rows gate at a looser tolerance (BENCH_SERVE_TOL,
  # default 0.5): sub-millisecond request latencies jitter far more
  # than the kernel benches' compute-bound rows, and the row that
  # matters most — warm staying two orders under cold — is asserted
  # unconditionally inside bench_serve itself.
  JSON="build-bench/BENCH_serve_fresh.json"
  BENCH_JSON="${JSON}" BENCH_COMMIT="${COMMIT}" \
    ./build-bench/bench/bench_serve >/dev/null
  ./build-bench/tools/bench_compare \
    --tolerance="${BENCH_SERVE_TOL:-0.5}" BENCH_serve.json "${JSON}"
  echo "bench gate: fresh timings within ${TOL} of committed baselines"
}

# Line coverage of the instrumented library directories, via gcov over the
# build-cov object tree. Prints one summary row per directory and fails
# when a floored directory (src/obs, src/verify) drops below its floor.
coverage_report() {
  local OBJ=build-cov/src/CMakeFiles/lcdfg.dir
  declare -A FLOORS=([obs]=80.0 [verify]=80.0 [jit]=80.0 [serve]=80.0)
  local DIR PCT FLOOR FAIL=0
  for DIR in exec verify obs jit serve; do
    # gcov resolves sources from the .gcda files themselves (CMake's
    # <file>.cpp.gcda naming defeats gcov's -o source lookup).
    # Only count the summary line directly under a matching File header:
    # gcov appends a trailing all-files total with no header of its own,
    # which would otherwise be charged to whichever file came last.
    PCT="$(gcov -n "${OBJ}/${DIR}"/*.gcda 2>/dev/null |
      awk -v dir="src/${DIR}/" '
        /^File /  { f = index($0, dir) > 0 }
        f && /^Lines executed:/ {
          s = $0; sub(/^Lines executed:/, "", s); split(s, a, "% of ")
          hit += a[1] * a[2] / 100; total += a[2]; f = 0
        }
        END { printf "%.1f", total ? 100 * hit / total : 0 }')"
    echo "coverage: src/${DIR}: ${PCT}% lines"
    FLOOR="${FLOORS[${DIR}]:-}"
    if [ -n "${FLOOR}" ] &&
       awk -v p="${PCT}" -v f="${FLOOR}" 'BEGIN { exit !(p < f) }'; then
      echo "coverage: error: src/${DIR} at ${PCT}% is below the ${FLOOR}% floor" >&2
      FAIL=1
    fi
  done
  return "${FAIL}"
}

verify_lint() {
  # --trace also executes every statically-clean configuration at two
  # threads with the span tracer armed and validates the recorded trace
  # against the plan's dependence closure (obs::checkTrace).
  ./build/tools/lcdfg-lint --strict --trace examples/chains
  # Static JIT translation validation: every configuration's emitted
  # kernel text is symbolically checked against its plan footprint
  # (K codes) with no host compiler in the loop.
  ./build/tools/lcdfg-lint --strict --jit-static examples/chains
  # The machine-readable stream must stay machine-readable: every line of
  # --json output parses as a JSON object.
  if command -v python3 >/dev/null 2>&1; then
    ./build/tools/lcdfg-lint --json --jit-static examples/chains |
      python3 -c 'import json, sys
for line in sys.stdin:
    if line.strip():
        json.loads(line)'
    echo "verify: lint --json stream parses"
  fi
}

# clang-tidy over the library and tools, driven by the .clang-tidy config
# at the repo root and the compile database the default preset exports.
# The tool is optional in the toolchain image: absent means skip, loudly.
tidy_stage() {
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "tidy: clang-tidy not on PATH; stage skipped"
    return 0
  fi
  cmake --preset default >/dev/null
  if [ ! -f build/compile_commands.json ]; then
    echo "tidy: build/compile_commands.json missing after configure" >&2
    return 1
  fi
  find src tools -name '*.cpp' -print0 |
    xargs -0 -P "${JOBS}" -n 8 clang-tidy -p build --quiet
  echo "tidy: clean under .clang-tidy profile"
}

# One fault-matrix row: inject $1 into lcdfg-opt --report and require a
# completed run whose JSON report carries the expected L00x reason ($2).
# Remaining arguments select the lowering (script, threads, ...).
run_fault() {
  local SPEC="$1" EXPECT="$2" OUT
  shift 2
  OUT="$(LCDFG_FAULT="${SPEC}" ./build-asan/tools/lcdfg-opt --report=json \
         "$@" examples/chains/fig1.lc 2>/dev/null)"
  if ! grep -q '"completed":true' <<<"${OUT}"; then
    echo "fault ${SPEC}: ladder did not complete: ${OUT}" >&2
    return 1
  fi
  if ! grep -q "${EXPECT}" <<<"${OUT}"; then
    echo "fault ${SPEC}: report missing ${EXPECT}: ${OUT}" >&2
    return 1
  fi
  echo "fault ${SPEC}: recovered [${EXPECT}]"
}

fault_campaign() {
  # Transient faults descend one rung (L002); the structural ones are
  # caught deterministically — modulo corruption by the strict verifier
  # gate (L003, needs the modulo-windowed script+reduce lowering) and
  # input truncation by plan-vs-storage validation (L006).
  run_fault kernel:throw L002-worker-exception --threads=2
  # Late occurrence: earlier tasks complete (and publish writes) before
  # the fault fires, exercising the ladder's store snapshot/restore.
  run_fault kernel:throw:2 L002-worker-exception --threads=2
  run_fault task:fail L002-worker-exception --threads=2
  # Same transient faults with the wavefront strategy forced, so both
  # schedulers' drain-then-rethrow paths stay on the ladder's happy path.
  LCDFG_SCHED=wavefront run_fault kernel:throw L002-worker-exception \
    --threads=2
  LCDFG_SCHED=wavefront run_fault task:fail L002-worker-exception \
    --threads=2
  # An infeasible live-temporary budget is refused deterministically
  # (E016) and the ladder waives it: scalar-serial, reason L007.
  OUT="$(./build-asan/tools/lcdfg-opt --report=json --threads=2 \
         --mem-budget=1 examples/chains/fig1.lc 2>/dev/null)"
  if ! grep -q '"completed":true' <<<"${OUT}" ||
     ! grep -q 'L007-mem-budget' <<<"${OUT}"; then
    echo "mem-budget ladder: missing L007-mem-budget recovery: ${OUT}" >&2
    return 1
  fi
  echo "fault --mem-budget=1: recovered [L007-mem-budget]"
  run_fault modulo:corrupt L003-verifier-error \
    --script examples/chains/fig1.script --reduce
  run_fault input:truncate L006-plan-invalid
  # A translation-validation rejection at the JIT gate must keep the run
  # alive on the interpreted bodies, descending through the same L008
  # rung a dead compiler takes.
  run_fault jitval:reject L008-jit-unavailable --kernels=jit
  # Hardened clean pass: the redzone canaries and the NaN read-before-write
  # guard must stay silent on a legal schedule, at every rung.
  ./build-asan/tools/lcdfg-opt --report --harden --threads=2 \
    examples/chains/fig1.lc >/dev/null
  ./build-asan/tools/lcdfg-opt --report --harden --batched=off \
    examples/chains/fig1.lc >/dev/null
  echo "fault campaign: hardened clean passes stayed silent"
  # Fuzz smoke under ASan+UBSan: 10k mutated pragma parses plus the random
  # transform-sequence stress tester.
  ./build-asan/tests/test_fuzz
  # Injected worker exceptions under the race detector, pool pinned small.
  for T in 2 4; do
    echo "== faults: tsan exec suite with LCDFG_THREADS=${T} =="
    LCDFG_THREADS="${T}" ./build-tsan/tests/test_exec \
      --gtest_filter='Recovery.*:FaultInjector.*:FaultSpecParse.*:ThreadPool.*:TaskGraph.*'
  done
}

# One process-level serve fault row: start lcdfg-serve with LCDFG_FAULT
# in its environment, drive one --raw request through lcdfg-load, and
# grep the expected code — an E-code in the client-side status for the
# transport faults, the L002 descent inside an ok response for an
# execution fault the daemon's ladder absorbs. A follow-up clean request
# against the same daemon then proves per-request isolation: the fault
# poisoned one request, not the process.
serve_fault_row() {
  local FAULT="$1" EXPECT="$2" TIMEOUT="$3" OUT
  local SOCK="/tmp/lcdfg-ci-serve-$$-${RANDOM}.sock" PID I
  local REQ='{"chain":"#pragma omplc for domain(0:N) with (x) write OUT{(x)} read IN{(x)}\nS: OUT(x) = g(IN(x));\n","size":16,"threads":2,"checksum":true}'
  rm -f "${SOCK}"
  LCDFG_FAULT="${FAULT}" ./build/tools/lcdfg-serve --unix="${SOCK}" \
    >/dev/null 2>&1 &
  PID=$!
  for I in $(seq 1 100); do [ -S "${SOCK}" ] && break; sleep 0.1; done
  OUT="$(./build/tools/lcdfg-load --unix="${SOCK}" \
         --timeout-ms="${TIMEOUT}" --raw="${REQ}")"
  if ! grep -q "${EXPECT}" <<<"${OUT}"; then
    kill "${PID}" 2>/dev/null || true
    echo "serve fault ${FAULT}: expected ${EXPECT}: ${OUT}" >&2
    return 1
  fi
  OUT="$(./build/tools/lcdfg-load --unix="${SOCK}" --timeout-ms=30000 \
         --raw="${REQ}")"
  kill "${PID}" 2>/dev/null
  wait "${PID}" 2>/dev/null || true
  if ! grep -q '"ok":true' <<<"${OUT}"; then
    echo "serve fault ${FAULT}: daemon did not keep serving: ${OUT}" >&2
    return 1
  fi
  echo "serve fault ${FAULT}: [${EXPECT}], daemon kept serving"
}

# Plan-serving gate: the protocol/cache/fault suites and the full 5k
# randomized soak under ASan+UBSan (the acceptance run — zero restarts,
# bit-identical warm-vs-cold), the connection-multiplexing and shared-
# pool paths under TSan with the worker pool pinned small (the soak is
# excluded there: 5k requests under the race detector would dominate the
# whole CI run; the protocol suite's concurrent-client tests cover the
# same interleavings), then the process-level fault matrix.
serve_stage() {
  ./build-asan/tests/test_serve
  local T
  for T in 2 4; do
    echo "== serve: tsan suite with LCDFG_THREADS=${T} =="
    LCDFG_THREADS="${T}" ./build-tsan/tests/test_serve \
      --gtest_filter='-ServeSoak.*'
  done
  serve_fault_row serve:drop E018-peer-lost 30000
  serve_fault_row serve:truncate E020-protocol 30000
  LCDFG_SERVE_DELAY_MS=2000 \
    serve_fault_row serve:delay E019-exchange-timeout 300
  serve_fault_row kernel:throw L002-worker-exception 30000
}

# JIT backend gate: suite runs under two builds, then cache hygiene and
# the dead-compiler degradation path at the process level.
jit_stage() {
  ./build/tests/test_jit
  ./build-asan/tests/test_jit

  local DIR=build/jit-ci-cache OUT
  rm -rf "${DIR}"
  # Cold cache: the run must invoke the host compiler.
  OUT="$(LCDFG_JIT_DIR="${DIR}" ./build/tools/lcdfg-opt --metrics \
         --kernels=jit examples/chains/fig1.lc 2>&1)"
  if ! grep -q 'exec\.jit\.compiled' <<<"${OUT}"; then
    echo "jit: cold run did not compile: ${OUT}" >&2
    return 1
  fi
  # Warm cache, new process: the same request must load from disk.
  OUT="$(LCDFG_JIT_DIR="${DIR}" ./build/tools/lcdfg-opt --metrics \
         --kernels=jit examples/chains/fig1.lc 2>&1)"
  if ! grep -q 'exec\.jit\.cache\.hits' <<<"${OUT}"; then
    echo "jit: warm run missed the disk cache: ${OUT}" >&2
    return 1
  fi
  # Changed flags are part of the key: the stale objects must not be
  # reused.
  OUT="$(LCDFG_JIT_DIR="${DIR}" LCDFG_JIT_FLAGS=-DLCDFG_CI_SALT \
         ./build/tools/lcdfg-opt --metrics --kernels=jit \
         examples/chains/fig1.lc 2>&1)"
  if ! grep -q 'exec\.jit\.compiled' <<<"${OUT}"; then
    echo "jit: flag change reused a stale cache key: ${OUT}" >&2
    return 1
  fi
  echo "jit: cache hygiene holds (cold compile, warm hit, flag invalidation)"
  # No host compiler: the ladder must keep the run alive on interpreted
  # bodies and report the downgrade, never fail.
  OUT="$(LCDFG_JIT_DIR="${DIR}" LCDFG_JIT_CC=/bin/false \
         ./build/tools/lcdfg-opt --report=json --kernels=jit \
         examples/chains/fig1.lc 2>/dev/null)"
  if ! grep -q '"completed":true' <<<"${OUT}" ||
     ! grep -q 'L008-jit-unavailable' <<<"${OUT}"; then
    echo "jit: dead compiler did not degrade to L008: ${OUT}" >&2
    return 1
  fi
  echo "jit: dead host compiler degraded cleanly [L008-jit-unavailable]"
  # Translation validation sits before the compile: a forced rejection at
  # that gate must take the same L008 path with the run completing on
  # interpreted bodies.
  OUT="$(LCDFG_FAULT=jitval:reject ./build/tools/lcdfg-opt --report=json \
         --kernels=jit examples/chains/fig1.lc 2>/dev/null)"
  if ! grep -q '"completed":true' <<<"${OUT}" ||
     ! grep -q 'L008-jit-unavailable' <<<"${OUT}"; then
    echo "jit: validation rejection did not degrade to L008: ${OUT}" >&2
    return 1
  fi
  echo "jit: validation rejection degraded cleanly [L008-jit-unavailable]"
}

# One shard fault-matrix row: inject $1 into the --shards=$2 drill with a
# short exchange deadline and require the L009 descent — the coordinator
# restores the pre-step snapshot and re-runs serially — to end completed,
# recovered, and bit-identical to the never-sharded oracle.
run_shard_fault() {
  local SPEC="$1" SHARDS="$2" OUT
  OUT="$(LCDFG_FAULT="${SPEC}" LCDFG_SHARD_TIMEOUT_MS=500 \
         ./build-asan/tools/lcdfg-opt --report=json --shards="${SHARDS}" \
         examples/chains/fig1.lc 2>/dev/null)"
  if ! grep -q '"completed":true' <<<"${OUT}" ||
     ! grep -q 'L009-shard-degraded' <<<"${OUT}"; then
    echo "shard fault ${SPEC} x${SHARDS}: no L009 descent: ${OUT}" >&2
    return 1
  fi
  if ! grep -q '"oracle_bit_identical":true' <<<"${OUT}"; then
    echo "shard fault ${SPEC} x${SHARDS}: degraded result diverged from" \
         "the serial oracle: ${OUT}" >&2
    return 1
  fi
  echo "shard fault ${SPEC} x${SHARDS}: recovered [L009-shard-degraded]," \
       "bit-identical"
}

# Multi-process sharding gate: the dedicated suite under ASan+UBSan (the
# coordinator and every forked worker run instrumented), clean 1/2/4-shard
# drills that must stay on their sharded-N rung and match the serial
# oracle bitwise, the fail-operational matrix (peer kill, frame
# truncation, frame drop, past-deadline delay, each at 2 and 4 shards),
# and the interior-compute/gather overlap window under TSan.
shard_stage() {
  ./build-asan/tests/test_shard
  local S OUT
  for S in 1 2 4; do
    OUT="$(./build-asan/tools/lcdfg-opt --report=json --shards="${S}" \
           examples/chains/fig1.lc 2>/dev/null)"
    if ! grep -q '"completed":true' <<<"${OUT}" ||
       ! grep -q "\"final_rung\":\"sharded-${S}\"" <<<"${OUT}" ||
       ! grep -q '"oracle_bit_identical":true' <<<"${OUT}"; then
      echo "shard clean x${S}: expected sharded-${S} + bit-identity:" \
           "${OUT}" >&2
      return 1
    fi
    echo "shard clean x${S}: completed [sharded-${S}], bit-identical"
  done
  for S in 2 4; do
    run_shard_fault peer:kill "${S}"
    run_shard_fault msg:truncate "${S}"
    run_shard_fault msg:drop "${S}"
    # LCDFG_SHARD_DELAY_MS defaults to 3x the exchange deadline, so the
    # delayed frame arrives only after every peer has timed out.
    run_shard_fault msg:delay "${S}"
  done
  # A delay well inside the deadline must be absorbed by the bounded
  # resend retries without any descent.
  OUT="$(LCDFG_FAULT=msg:delay LCDFG_SHARD_DELAY_MS=100 \
         ./build-asan/tools/lcdfg-opt --report=json --shards=2 \
         examples/chains/fig1.lc 2>/dev/null)"
  if ! grep -q '"final_rung":"sharded-2"' <<<"${OUT}" ||
     ! grep -q '"oracle_bit_identical":true' <<<"${OUT}"; then
    echo "shard short-delay: expected retries to absorb a 100ms delay:" \
         "${OUT}" >&2
    return 1
  fi
  echo "shard short-delay: absorbed by resend retries, no descent"
  # The overlap window — interior compute on its own thread while the
  # gather loop applies remote halo slabs — under the race detector. The
  # suite's multi-shard tests pin each worker's local pool to 2 threads;
  # LCDFG_THREADS additionally sizes the in-process rt::parallelFor used
  # by the single-shard and oracle paths.
  local T
  for T in 2 4; do
    echo "== shard: tsan suite with LCDFG_THREADS=${T} =="
    LCDFG_THREADS="${T}" ./build-tsan/tests/test_shard
  done
}

for PRESET in "${PRESETS[@]}"; do
  echo "== preset: ${PRESET} =="
  if [ "${PRESET}" = verify ]; then
    cmake --preset default
    cmake --build --preset default -j "${JOBS}" --target lcdfg-lint
    verify_lint
    continue
  fi
  if [ "${PRESET}" = faults ]; then
    cmake --preset asan
    cmake --build --preset asan -j "${JOBS}" --target lcdfg-opt test_fuzz
    cmake --preset tsan
    cmake --build --preset tsan -j "${JOBS}" --target test_exec
    fault_campaign
    continue
  fi
  if [ "${PRESET}" = jit ]; then
    cmake --preset default
    cmake --build --preset default -j "${JOBS}" --target test_jit lcdfg-opt
    cmake --preset asan
    cmake --build --preset asan -j "${JOBS}" --target test_jit
    jit_stage
    continue
  fi
  if [ "${PRESET}" = shard ]; then
    cmake --preset asan
    cmake --build --preset asan -j "${JOBS}" --target test_shard lcdfg-opt
    cmake --preset tsan
    cmake --build --preset tsan -j "${JOBS}" --target test_shard
    shard_stage
    continue
  fi
  if [ "${PRESET}" = serve ]; then
    cmake --preset asan
    cmake --build --preset asan -j "${JOBS}" --target test_serve
    cmake --preset tsan
    cmake --build --preset tsan -j "${JOBS}" --target test_serve
    cmake --preset default
    cmake --build --preset default -j "${JOBS}" --target lcdfg-serve \
      lcdfg-load
    serve_stage
    continue
  fi
  if [ "${PRESET}" = ubsan ]; then
    cmake --preset ubsan
    cmake --build --preset ubsan -j "${JOBS}"
    ./build-ubsan/tests/test_exec
    ./build-ubsan/tests/test_verify
    ./build-ubsan/tests/test_kernel_verify
    ./build-ubsan/tests/test_jit
    echo "ubsan: exec/verify/kernel_verify/jit suites clean, no recover"
    continue
  fi
  if [ "${PRESET}" = tidy ]; then
    tidy_stage
    continue
  fi
  if [ "${PRESET}" = coverage ]; then
    cmake --preset coverage
    cmake --build --preset coverage -j "${JOBS}" \
      --target test_exec test_verify test_kernel_verify test_obs test_jit \
      test_serve
    # Stale counters from a previous run would dilute the report.
    find build-cov -name '*.gcda' -delete
    ./build-cov/tests/test_exec
    ./build-cov/tests/test_verify
    ./build-cov/tests/test_kernel_verify
    ./build-cov/tests/test_obs
    ./build-cov/tests/test_jit
    ./build-cov/tests/test_serve
    coverage_report
    continue
  fi
  cmake --preset "${PRESET}"
  cmake --build --preset "${PRESET}" -j "${JOBS}"
  if [ "${PRESET}" = bench ]; then
    bench_smoke
    bench_gate
  else
    ctest --preset "${PRESET}" -j "${JOBS}"
  fi
  if [ "${PRESET}" = tsan ]; then
    # The ctest pass runs with the pool's default sizing; re-run the
    # execution and observability suites across the scheduler matrix with
    # the worker pool pinned small, so both the wavefront barrier and the
    # work-stealing list scheduler see few-worker handoffs as the common
    # case TSan watches.
    for SCHED in wavefront list; do
      for T in 2 4; do
        echo "== tsan: LCDFG_SCHED=${SCHED} LCDFG_THREADS=${T} =="
        LCDFG_SCHED="${SCHED}" LCDFG_THREADS="${T}" \
          ./build-tsan/tests/test_exec
        LCDFG_SCHED="${SCHED}" LCDFG_THREADS="${T}" \
          ./build-tsan/tests/test_obs
      done
    done
  fi
done

echo "ci: all presets green (${PRESETS[*]})"
