#!/usr/bin/env bash
#===------------------------------------------------------------------------===#
#
# Tier-1 gate: configure, build, and run the full test suite under the
# default (Release) preset and again under ThreadSanitizer, which is what
# keeps the execution layer's tile scheduler honest, then a Release bench
# smoke (exec tests + one quick bench_fig6_small iteration) that catches
# batched-path regressions. Run from the repo root:
#
#   tools/ci.sh            # default + tsan + bench smoke + verify + faults
#   tools/ci.sh default    # just one preset
#   tools/ci.sh asan       # the ASan+UBSan sibling
#   tools/ci.sh bench      # just the bench smoke
#   tools/ci.sh verify     # just the static legality lint
#   tools/ci.sh faults     # just the fault-injection campaign
#
# The tsan stage additionally re-runs the execution-layer tests with the
# worker pool capped at 2 and 4 threads, so the scheduler's every
# cross-thread handoff is exercised under the race detector. The verify
# stage sweeps every example chain and MiniFluxDiv recipe through
# lcdfg-lint --strict, which exits nonzero on any legality ERROR.
#
# The faults stage drives the graceful-degradation ladder end to end:
# every LCDFG_FAULT class is injected into `lcdfg-opt --report` (built
# under ASan+UBSan) and must recover with its documented L00x reason code;
# a hardened (redzone + NaN-guard) clean pass must not false-positive; the
# fuzz smoke (10k mutated parses + the transform stress tester) runs under
# ASan; and the injected-exception pool tests re-run under TSan with the
# worker pool pinned to 2 and 4 threads. docs/ROBUSTNESS.md documents the
# codes this stage greps for.
#
#===------------------------------------------------------------------------===#

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"
PRESETS=("$@")
if [ ${#PRESETS[@]} -eq 0 ]; then
  PRESETS=(default tsan bench verify faults)
fi

bench_smoke() {
  ./build-bench/tests/test_exec
  local JSON=build-bench/BENCH_smoke.json
  MFD_CELLS=4096 MFD_REPS=1 MFD_THREADS=2 BENCH_JSON="${JSON}" \
    ./build-bench/bench/bench_fig6_small
  grep -q '"fuseAll-reduced"' "${JSON}" && grep -q '"batched_on"' "${JSON}"
  echo "bench smoke: ${JSON} has batched rows"
}

verify_lint() {
  ./build/tools/lcdfg-lint --strict examples/chains
}

# One fault-matrix row: inject $1 into lcdfg-opt --report and require a
# completed run whose JSON report carries the expected L00x reason ($2).
# Remaining arguments select the lowering (script, threads, ...).
run_fault() {
  local SPEC="$1" EXPECT="$2" OUT
  shift 2
  OUT="$(LCDFG_FAULT="${SPEC}" ./build-asan/tools/lcdfg-opt --report=json \
         "$@" examples/chains/fig1.lc 2>/dev/null)"
  if ! grep -q '"completed":true' <<<"${OUT}"; then
    echo "fault ${SPEC}: ladder did not complete: ${OUT}" >&2
    return 1
  fi
  if ! grep -q "${EXPECT}" <<<"${OUT}"; then
    echo "fault ${SPEC}: report missing ${EXPECT}: ${OUT}" >&2
    return 1
  fi
  echo "fault ${SPEC}: recovered [${EXPECT}]"
}

fault_campaign() {
  # Transient faults descend one rung (L002); the structural ones are
  # caught deterministically — modulo corruption by the strict verifier
  # gate (L003, needs the modulo-windowed script+reduce lowering) and
  # input truncation by plan-vs-storage validation (L006).
  run_fault kernel:throw L002-worker-exception --threads=2
  # Late occurrence: earlier tasks complete (and publish writes) before
  # the fault fires, exercising the ladder's store snapshot/restore.
  run_fault kernel:throw:2 L002-worker-exception --threads=2
  run_fault task:fail L002-worker-exception --threads=2
  run_fault modulo:corrupt L003-verifier-error \
    --script examples/chains/fig1.script --reduce
  run_fault input:truncate L006-plan-invalid
  # Hardened clean pass: the redzone canaries and the NaN read-before-write
  # guard must stay silent on a legal schedule, at every rung.
  ./build-asan/tools/lcdfg-opt --report --harden --threads=2 \
    examples/chains/fig1.lc >/dev/null
  ./build-asan/tools/lcdfg-opt --report --harden --batched=off \
    examples/chains/fig1.lc >/dev/null
  echo "fault campaign: hardened clean passes stayed silent"
  # Fuzz smoke under ASan+UBSan: 10k mutated pragma parses plus the random
  # transform-sequence stress tester.
  ./build-asan/tests/test_fuzz
  # Injected worker exceptions under the race detector, pool pinned small.
  for T in 2 4; do
    echo "== faults: tsan exec suite with LCDFG_THREADS=${T} =="
    LCDFG_THREADS="${T}" ./build-tsan/tests/test_exec \
      --gtest_filter='Recovery.*:FaultInjector.*:FaultSpecParse.*:ThreadPool.*:TaskGraph.*'
  done
}

for PRESET in "${PRESETS[@]}"; do
  echo "== preset: ${PRESET} =="
  if [ "${PRESET}" = verify ]; then
    cmake --preset default
    cmake --build --preset default -j "${JOBS}" --target lcdfg-lint
    verify_lint
    continue
  fi
  if [ "${PRESET}" = faults ]; then
    cmake --preset asan
    cmake --build --preset asan -j "${JOBS}" --target lcdfg-opt test_fuzz
    cmake --preset tsan
    cmake --build --preset tsan -j "${JOBS}" --target test_exec
    fault_campaign
    continue
  fi
  cmake --preset "${PRESET}"
  cmake --build --preset "${PRESET}" -j "${JOBS}"
  if [ "${PRESET}" = bench ]; then
    bench_smoke
  else
    ctest --preset "${PRESET}" -j "${JOBS}"
  fi
  if [ "${PRESET}" = tsan ]; then
    # The ctest pass runs with the pool's default sizing; re-run the
    # execution-layer suite with the worker pool pinned small so handoffs
    # between few workers are the common case TSan watches.
    for T in 2 4; do
      echo "== tsan: test_exec with LCDFG_THREADS=${T} =="
      LCDFG_THREADS="${T}" ./build-tsan/tests/test_exec
    done
  fi
done

echo "ci: all presets green (${PRESETS[*]})"
