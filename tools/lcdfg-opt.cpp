//===- tools/lcdfg-opt.cpp - Loop chain optimization driver ---------------===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
// The command-line face of the paper's workflow: read an annotated loop
// chain, optionally apply a transformation script (or the automatic
// scheduler), and emit any of the system's artifacts — the schedule as
// text, the cost model, the Graphviz rendering, the ISCC script, the
// storage plan, or generated C code.
//
//   lcdfg-opt [options] <chain.lc>
//     --script <file>      apply a transformation script (see ScriptRunner)
//     --autoschedule[=S]   run the greedy scheduler (stream budget S)
//     --reduce             apply reuse-distance storage reduction
//     --emit=text|cost|dot|iscc|storage|code|pragmas   (default: text)
//     --stats              compile + execute the schedule at --size and
//                          report per-node timings and measured-vs-model
//                          traffic (replaces --emit output). The counting
//                          run is serialized and scalar (the oracle); a
//                          second uninstrumented run reports wall time
//                          honoring --threads and --batched.
//     --batched=on|off     row-batched kernel execution for the timed
//                          run (default on)
//     --dump-plan          print the compiled ExecutionPlan
//     --verify[=strict]    run the static legality verifier over the
//                          compiled plan and the scheduled graph; strict
//                          mode exits nonzero when any ERROR is found.
//                          With --kernels=jit also runs the JIT
//                          translation validator (K codes) over every
//                          emission the engine would compile
//     --report[=json]      execute through the graceful-degradation ladder
//                          (exec::runWithRecovery) with the untransformed
//                          chain as the fallback plan, and print the
//                          RunReport: every rung descent with its stable
//                          L00x reason code, the rung that completed, and
//                          the E014 diagnostic when the ladder exhausts.
//                          Exits nonzero only when no rung completed.
//                          Honors an armed LCDFG_FAULT spec, so this is
//                          the fault-campaign entry point for tools/ci.sh.
//     --harden             run --report rungs against canary-padded shadow
//                          buffers with NaN-poisoned temporaries
//     --trace=<file>       execute the schedule once (honoring --threads
//                          and --batched) with the span tracer armed and
//                          write the Chrome trace_event JSON to <file>
///                          (load in chrome://tracing or Perfetto); the
//                          trace is validated with obs::checkTrace and any
//                          T00x conformance error exits nonzero
//     --metrics            print the trace's compact text summary (counter
//                          registry totals, per-worker busy time and load
//                          imbalance); implies a traced run like --trace
//     --size=N             concrete size for --stats/--dump-plan (default 8)
//     --threads=K          parallelism for --stats runs
//     --scheduler=S        task-graph strategy for parallel runs:
//                          list (work-stealing ready deques, the default)
//                          or wavefront (the paper's level barrier)
//     --mem-budget=B       live-temporary byte cap for the list scheduler;
//                          tasks whose admission would push live bytes
//                          past B are deferred. An infeasible budget is an
//                          E016 error (under --report, an L007 descent).
//                          Requires --scheduler=list.
//     -o <file>            write output to a file instead of stdout
//
//===----------------------------------------------------------------------===//

#include "codegen/CPrinter.h"
#include "codegen/Generator.h"
#include "codegen/IsccExport.h"
#include "exec/ExecutionPlan.h"
#include "exec/PlanRunner.h"
#include "exec/Recovery.h"
#include "exec/RowPlan.h"
#include "jit/JitEngine.h"
#include "obs/Trace.h"
#include "obs/TraceCheck.h"
#include "graph/AutoScheduler.h"
#include "graph/CostModel.h"
#include "graph/DotExport.h"
#include "graph/GraphBuilder.h"
#include "graph/Traffic.h"
#include "parser/PragmaParser.h"
#include "parser/PragmaPrinter.h"
#include "parser/ScriptRunner.h"
#include "shard/ShardRunner.h"
#include "storage/ReuseDistance.h"
#include "storage/StorageMap.h"
#include "support/Status.h"
#include "verify/KernelVerifier.h"
#include "verify/PlanVerifier.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

using namespace lcdfg;

namespace {

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options] <chain.lc>\n"
      "  --script <file>     apply a transformation script\n"
      "  --autoschedule[=S]  greedy scheduling with stream budget S\n"
      "  --reduce            reuse-distance storage reduction\n"
      "  --emit=KIND         text|cost|dot|iscc|storage|code|pragmas\n"
      "  --stats             execute the schedule, report node timings and\n"
      "                      measured-vs-model traffic\n"
      "  --batched=on|off    row-batched execution for the timed run\n"
      "  --kernels=interp|jit batched-body provenance: registered C++\n"
      "                      bodies (default) or run-time-compiled\n"
      "                      specialized kernels (LCDFG_JIT overrides)\n"
      "  --dump-plan         print the compiled execution plan\n"
      "  --verify[=strict]   static legality checks; strict exits nonzero\n"
      "                      on any ERROR (adds the K-code JIT translation\n"
      "                      validator under --kernels=jit)\n"
      "  --report[=json]     execute through the degradation ladder and\n"
      "                      print the recovery report; exits nonzero only\n"
      "                      when every rung fails (honors LCDFG_FAULT)\n"
      "  --harden            redzone + NaN-guard shadow buffers for\n"
      "                      --report runs\n"
      "  --trace=FILE        traced execution; write Chrome trace JSON\n"
      "  --metrics           print the trace summary (counters, per-worker\n"
      "                      load); implies a traced run\n"
      "  --shards=N          (with --report) multi-process sharded\n"
      "                      timestepper drill: N forked workers exchange\n"
      "                      ghost slabs with deadlines/retries, verified\n"
      "                      bit-identical against a serial oracle; honors\n"
      "                      LCDFG_FAULT peer:kill / msg:* specs (L009)\n"
      "  --size=N            concrete size for --stats/--dump-plan\n"
      "  --threads=K         parallelism for --stats runs\n"
      "  --scheduler=S       list (work-stealing, default) | wavefront\n"
      "  --mem-budget=B      live-temporary byte cap (list scheduler only);\n"
      "                      infeasible budgets fail with E016\n"
      "  -o <file>           output file (default stdout)\n",
      Argv0);
  return 2;
}

/// Batched form of the synthetic stand-in body: sum of reads accumulated
/// into the target, in the same order as the scalar lambda so the two
/// paths stay bit-identical. One instantiation per read arity (the ABI
/// fixes the arity per kernel).
template <int Arity>
void batchedSum(double *W, const double *const *R, const std::int64_t *S,
                std::int64_t WS, std::int64_t N) {
  for (std::int64_t I = 0; I < N; ++I) {
    double Sum = W[I * WS];
    for (int J = 0; J < Arity; ++J)
      Sum += R[J][I * S[J]];
    W[I * WS] = Sum;
  }
}

codegen::BatchedKernel batchedSumForArity(std::size_t Arity) {
  static constexpr codegen::BatchedKernel Table[] = {
      batchedSum<0>, batchedSum<1>, batchedSum<2>, batchedSum<3>,
      batchedSum<4>, batchedSum<5>, batchedSum<6>, batchedSum<7>,
      batchedSum<8>};
  return Arity < sizeof(Table) / sizeof(Table[0]) ? Table[Arity] : nullptr;
}

/// Pure variant for hardened runs: the accumulating body above reads its
/// own (unwritten) target first, which under NaN-poisoned temporaries is
/// exactly the read-before-write pattern the guard exists to catch. The
/// hardened stand-in must define every output point from its reads alone.
template <int Arity>
void batchedPureSum(double *W, const double *const *R, const std::int64_t *S,
                    std::int64_t WS, std::int64_t N) {
  for (std::int64_t I = 0; I < N; ++I) {
    double Sum = 0.0;
    for (int J = 0; J < Arity; ++J)
      Sum += R[J][I * S[J]];
    W[I * WS] = Sum;
  }
}

codegen::BatchedKernel batchedPureSumForArity(std::size_t Arity) {
  static constexpr codegen::BatchedKernel Table[] = {
      batchedPureSum<0>, batchedPureSum<1>, batchedPureSum<2>,
      batchedPureSum<3>, batchedPureSum<4>, batchedPureSum<5>,
      batchedPureSum<6>, batchedPureSum<7>, batchedPureSum<8>};
  return Arity < sizeof(Table) / sizeof(Table[0]) ? Table[Arity] : nullptr;
}

/// Expression form of the two stand-in bodies: the same left-associated
/// sum, so the JIT's emitted C adds in the interpreter's order.
codegen::KernelExpr sumExpr(std::size_t Arity, bool Pure) {
  codegen::KernelExpr E = Pure ? codegen::lit(0.0) : codegen::current();
  for (std::size_t J = 0; J < Arity; ++J)
    E = E + codegen::read(static_cast<unsigned>(J));
  return E;
}

/// --shards=N: the sharded multi-process timestepper drill. The chain
/// contributes its stencil (ghost depth = widest read offset, one grid
/// component per nest); the run itself is the Section 5.6 workload — a
/// periodic box grid stepped 3 times across N worker processes with
/// fault-tolerant overlapped ghost exchange — followed by an in-process
/// scalar-serial oracle run whose result must be bit-identical.
///
/// Deliberately bypasses the plan/pool machinery: fork needs a
/// single-threaded parent, so nothing here may start the ThreadPool (the
/// oracle runs at Threads = 1, which rt::parallelFor executes inline).
int runShardsMode(const ir::LoopChain &Chain, int Shards, int Threads,
                  std::int64_t SizeN, bool Json, bool Metrics,
                  const std::string &OutputPath) {
  const int N = static_cast<int>(
      std::min<std::int64_t>(std::max<std::int64_t>(SizeN, 2), 16));

  // The chain's read stencil, padded/truncated to 3D. Ghost depth is the
  // widest offset in any dimension, clamped to [1, N] (deeper ghosts than
  // a box interior are rejected by the runtime).
  std::set<std::array<int, 3>> Points;
  Points.insert({0, 0, 0});
  std::int64_t Widest = 1;
  for (unsigned I = 0; I < Chain.numNests(); ++I)
    for (const ir::Access &A : Chain.nest(I).Reads)
      for (const std::vector<std::int64_t> &Off : A.Offsets) {
        std::array<int, 3> P{0, 0, 0};
        for (std::size_t D = 0; D < Off.size() && D < 3; ++D) {
          P[D] = static_cast<int>(Off[D]);
          Widest = std::max<std::int64_t>(
              Widest, Off[D] < 0 ? -Off[D] : Off[D]);
        }
        Points.insert(P);
      }
  const int G = static_cast<int>(std::min<std::int64_t>(Widest, N));
  const int NumComp =
      std::max(1, std::min(4, static_cast<int>(Chain.numNests())));

  std::vector<std::array<int, 3>> Stencil;
  for (std::array<int, 3> P : Points) {
    for (int &C : P)
      C = std::max(-G, std::min(G, C));
    Stencil.push_back(P);
  }
  const double Scale = 1.0 / static_cast<double>(Stencil.size());
  shard::StepFn Fn = [Stencil, Scale](const rt::Box &In, rt::Box &Out) {
    for (int C = 0; C < In.numComponents(); ++C)
      for (int Z = 0; Z < In.size(); ++Z)
        for (int Y = 0; Y < In.size(); ++Y)
          for (int X = 0; X < In.size(); ++X) {
            double Acc = 0.0;
            for (const std::array<int, 3> &P : Stencil)
              Acc += In.at(C, Z + P[0], Y + P[1], X + P[2]);
            Out.at(C, Z, Y, X) = Acc * Scale;
          }
  };

  // 3 z-rows per rank: every worker has interior rows to overlap with the
  // in-flight exchange.
  const rt::GridLayout Layout{3 * Shards, 2, 2};
  std::vector<rt::Box> Boxes;
  Boxes.reserve(static_cast<std::size_t>(Layout.numBoxes()));
  for (int I = 0; I < Layout.numBoxes(); ++I) {
    Boxes.emplace_back(N, G, NumComp);
    Boxes.back().fillPseudoRandom(0x10a7ULL +
                                  static_cast<std::uint64_t>(I) * 733);
  }
  std::vector<rt::Box> Oracle = Boxes;

  const int Steps = 3;
  const support::Status OracleStatus =
      shard::runSerialReference(Oracle, Layout, Steps, Fn);
  shard::ShardOptions Opts;
  Opts.Shards = Shards;
  Opts.Threads = std::max(1, Threads);
  // With --metrics the coordinator-side tracer records the Shard/Exchange
  // spans and folds the workers' rt.shard.* totals in at drain time.
  obs::Tracer &Tracer = obs::Tracer::global();
  if (Metrics)
    Tracer.enable();
  shard::ShardReport Report =
      shard::runSharded(Boxes, Layout, Steps, Fn, Opts);
  std::string Summary;
  if (Metrics) {
    obs::Trace T = Tracer.drain();
    Tracer.disable();
    Summary = T.summary();
  }

  bool BitIdentical = Report.Completed && OracleStatus.isOk();
  for (std::size_t I = 0; BitIdentical && I < Boxes.size(); ++I)
    for (int C = 0; BitIdentical && C < NumComp; ++C)
      for (int Z = 0; BitIdentical && Z < N; ++Z)
        for (int Y = 0; BitIdentical && Y < N; ++Y)
          for (int X = 0; X < N; ++X)
            if (Boxes[I].at(C, Z, Y, X) != Oracle[I].at(C, Z, Y, X)) {
              BitIdentical = false;
              break;
            }

  std::string Output;
  if (Json) {
    std::string J = Report.toJson();
    J.insert(J.size() - 1, std::string(",\"oracle_bit_identical\":") +
                               (BitIdentical ? "true" : "false"));
    Output = J + "\n";
  } else {
    Output = Report.toString() + "  oracle bit-identical: " +
             (BitIdentical ? "yes" : "no") + "\n";
  }
  Output += Summary;
  if (OutputPath.empty()) {
    std::fputs(Output.c_str(), stdout);
  } else {
    std::ofstream Out(OutputPath);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write %s\n", OutputPath.c_str());
      return 1;
    }
    Out << Output;
  }
  return (!Report.Completed || !BitIdentical) ? 1 : 0;
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

int runTool(int argc, char **argv) {
  std::string InputPath, ScriptPath, OutputPath;
  std::string Emit = "text";
  bool AutoSchedule = false, Reduce = false;
  bool Stats = false, DumpPlan = false, Batched = true;
  bool Verify = false, VerifyStrict = false;
  bool Report = false, ReportJson = false, Harden = false;
  std::string TracePath;
  bool Metrics = false;
  std::int64_t SizeN = 8;
  int Threads = 1;
  unsigned Streams = 4;
  exec::SchedulerKind Scheduler = exec::SchedulerKind::List;
  exec::KernelMode KernelMode = exec::KernelMode::Interp;
  std::int64_t MemBudget = 0;
  int Shards = 0;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--script" && I + 1 < argc) {
      ScriptPath = argv[++I];
    } else if (Arg == "--autoschedule") {
      AutoSchedule = true;
    } else if (Arg.rfind("--autoschedule=", 0) == 0) {
      AutoSchedule = true;
      Streams = static_cast<unsigned>(std::atoi(Arg.c_str() + 15));
    } else if (Arg == "--reduce") {
      Reduce = true;
    } else if (Arg == "--stats") {
      Stats = true;
    } else if (Arg.rfind("--batched=", 0) == 0) {
      std::string V = Arg.substr(10);
      if (V == "on") {
        Batched = true;
      } else if (V == "off") {
        Batched = false;
      } else {
        std::fprintf(stderr, "error: --batched takes on|off\n");
        return 2;
      }
    } else if (Arg.rfind("--kernels=", 0) == 0) {
      std::string V = Arg.substr(10);
      if (V == "interp") {
        KernelMode = exec::KernelMode::Interp;
      } else if (V == "jit") {
        KernelMode = exec::KernelMode::Jit;
      } else {
        std::fprintf(stderr, "error: --kernels takes interp|jit\n");
        return 2;
      }
    } else if (Arg == "--dump-plan") {
      DumpPlan = true;
    } else if (Arg == "--verify") {
      Verify = true;
    } else if (Arg == "--verify=strict") {
      Verify = VerifyStrict = true;
    } else if (Arg == "--report") {
      Report = true;
    } else if (Arg == "--report=json") {
      Report = ReportJson = true;
    } else if (Arg == "--harden") {
      Harden = true;
    } else if (Arg.rfind("--trace=", 0) == 0) {
      TracePath = Arg.substr(8);
      if (TracePath.empty()) {
        std::fprintf(stderr, "error: --trace needs a file path\n");
        return 2;
      }
    } else if (Arg == "--metrics") {
      Metrics = true;
    } else if (Arg.rfind("--size=", 0) == 0) {
      SizeN = std::atoll(Arg.c_str() + 7);
      if (SizeN < 1) {
        std::fprintf(stderr, "error: --size must be positive\n");
        return 2;
      }
    } else if (Arg.rfind("--threads=", 0) == 0) {
      Threads = std::atoi(Arg.c_str() + 10);
    } else if (Arg.rfind("--scheduler=", 0) == 0) {
      std::string V = Arg.substr(12);
      if (V == "wavefront") {
        Scheduler = exec::SchedulerKind::Wavefront;
      } else if (V == "list") {
        Scheduler = exec::SchedulerKind::List;
      } else {
        std::fprintf(stderr, "error: --scheduler takes wavefront|list\n");
        return 2;
      }
    } else if (Arg.rfind("--shards=", 0) == 0) {
      Shards = std::atoi(Arg.c_str() + 9);
      if (Shards < 1) {
        std::fprintf(stderr, "error: --shards must be positive\n");
        return 2;
      }
    } else if (Arg.rfind("--mem-budget=", 0) == 0) {
      MemBudget = std::atoll(Arg.c_str() + 13);
      if (MemBudget < 1) {
        std::fprintf(stderr, "error: --mem-budget must be positive\n");
        return 2;
      }
    } else if (Arg.rfind("--emit=", 0) == 0) {
      Emit = Arg.substr(7);
    } else if (Arg == "-o" && I + 1 < argc) {
      OutputPath = argv[++I];
    } else if (!Arg.empty() && Arg[0] == '-') {
      return usage(argv[0]);
    } else {
      InputPath = Arg;
    }
  }
  if (InputPath.empty())
    return usage(argv[0]);
  if (MemBudget > 0 && Scheduler == exec::SchedulerKind::Wavefront) {
    std::fprintf(stderr, "error: --mem-budget needs --scheduler=list (the "
                         "wavefront strategy has no admission step)\n");
    return 2;
  }

  std::string Source;
  if (!readFile(InputPath, Source)) {
    std::fprintf(stderr, "error: cannot read %s\n", InputPath.c_str());
    return 1;
  }
  parser::ParseResult Parsed = parser::parseLoopChain(Source);
  if (!Parsed) {
    // formatted() renders "line L, column C: message" plus the offending
    // logical line and an aligned caret when position info is available.
    std::fprintf(stderr, "%s: error: %s\n", InputPath.c_str(),
                 Parsed.formatted().c_str());
    return 1;
  }
  ir::LoopChain Chain = std::move(*Parsed.Chain);
  graph::Graph G = graph::buildGraph(Chain);

  if (!ScriptPath.empty()) {
    std::string Script;
    if (!readFile(ScriptPath, Script)) {
      std::fprintf(stderr, "error: cannot read %s\n", ScriptPath.c_str());
      return 1;
    }
    parser::ScriptResult R = parser::runScript(G, Script);
    for (const std::string &Line : R.Log)
      std::fprintf(stderr, "script: %s\n", Line.c_str());
    if (!R) {
      std::fprintf(stderr, "%s:%u: error: %s\n", ScriptPath.c_str(), R.Line,
                   R.Error.c_str());
      return 1;
    }
  }
  if (AutoSchedule) {
    graph::AutoScheduleOptions Options;
    Options.MaxStreams = Streams;
    graph::AutoScheduleResult R = graph::autoSchedule(G, Options);
    std::fprintf(stderr, "autoschedule: %u moves, S_R %s -> %s\n",
                 R.StepsApplied, R.InitialRead.toString().c_str(),
                 R.FinalRead.toString().c_str());
  }
  if (Reduce)
    storage::reduceStorage(G);

  if (Shards > 0) {
    if (!Report) {
      std::fprintf(stderr,
                   "error: --shards needs --report (the drill's outcome is "
                   "the recovery report)\n");
      return 2;
    }
    return runShardsMode(Chain, Shards, Threads, SizeN, ReportJson, Metrics,
                         OutputPath);
  }

  bool VerifyFailed = false, ReportFailed = false, TraceFailed = false;
  const bool Trace = Metrics || !TracePath.empty();
  std::string Output;
  if (Stats || DumpPlan || Verify || Report || Trace) {
    // Compile the (transformed) schedule to an ExecutionPlan at the
    // concrete size and, for --stats, execute it with instrumentation.
    // Parsed chains carry no executable kernels; a synthetic body
    // (sum of reads accumulated into the target) stands in — timing and
    // traffic shapes are meaningful regardless of the arithmetic.
    codegen::KernelRegistry Kernels;
    std::map<std::size_t, int> SyntheticByArity;
    auto syntheticId = [&](std::size_t Arity) {
      auto It = SyntheticByArity.find(Arity);
      if (It != SyntheticByArity.end())
        return It->second;
      int Id =
          Harden ? Kernels.add(
                       [](const std::vector<double> &Reads, double) {
                         double Sum = 0.0;
                         for (double R : Reads)
                           Sum += R;
                         return Sum;
                       },
                       batchedPureSumForArity(Arity), sumExpr(Arity, true))
                 : Kernels.add(
                       [](const std::vector<double> &Reads, double Current) {
                         double Sum = Current;
                         for (double R : Reads)
                           Sum += R;
                         return Sum;
                       },
                       batchedSumForArity(Arity), sumExpr(Arity, false));
      SyntheticByArity.emplace(Arity, Id);
      return Id;
    };
    for (unsigned N = 0; N < Chain.numNests(); ++N)
      if (Chain.nest(N).KernelId < 0) {
        std::size_t Arity = 0;
        for (const ir::Access &A : Chain.nest(N).Reads)
          Arity += A.Offsets.size();
        Chain.nest(N).KernelId = syntheticId(Arity);
      }

    exec::ParamEnv Env{{"N", SizeN}};
    storage::StoragePlan SPlan = storage::StoragePlan::build(G);
    auto seedInputs = [&](storage::ConcreteStorage &S) {
      for (const std::string &Name : Chain.arrayNames())
        if (Chain.array(Name).Kind == ir::StorageKind::PersistentInput) {
          std::vector<double> &Buf = S.spaceOf(Name);
          for (std::size_t I = 0; I < Buf.size(); ++I)
            Buf[I] = 0.001 * static_cast<double>((I * 2654435761u) % 1000u);
        }
    };
    storage::ConcreteStorage Store(SPlan, Env);
    seedInputs(Store);

    codegen::AstPtr Ast = codegen::generate(G);
    exec::ExecutionPlan Plan = exec::ExecutionPlan::fromAst(G, *Ast, Store,
                                                            Env);
    std::ostringstream OS;
    if (DumpPlan)
      OS << Plan.dump();
    if (Verify) {
      verify::VerifyOptions VOpts;
      VOpts.Kernels = &Kernels;
      verify::PlanVerifier Verifier(Plan, VOpts);
      verify::Diagnostics Diags = Verifier.verify();
      verify::checkGraphSchedule(G, Diags);
      // Whenever the JIT path is selectable, statically validate the
      // emissions it would compile (K codes) alongside the plan-level
      // V codes. Purely symbolic: no engine, no host compiler.
      if (exec::effectiveKernelMode(KernelMode) == exec::KernelMode::Jit) {
        verify::Diagnostics KDiags =
            verify::verifyPlanKernels(Plan, Kernels);
        for (const verify::Diagnostic &D : KDiags.all())
          Diags.add(D);
      }
      OS << Diags.toString();
      if (VerifyStrict && Diags.hasErrors())
        VerifyFailed = true;
    }
    if (Stats) {
      exec::RunOptions Opts;
      Opts.Threads = Threads;
      Opts.CollectStats = true;
      exec::PlanStats PS = exec::runPlan(Plan, Kernels, Store, Opts);
      OS << PS.toString();
      graph::TrafficReport TR = graph::measureTraffic(G, SizeN);
      OS << "traffic at N=" << SizeN << ": measured " << PS.totalRead()
         << ", enumerated " << TR.Total << ", model S_R " << TR.ModelTotal
         << ", model accuracy " << TR.modelAccuracy() << "\n";
      // Counters come from the serialized scalar oracle above; wall time
      // for A/B comparisons comes from an uninstrumented run on fresh
      // storage that honors --threads and --batched.
      storage::ConcreteStorage TimedStore(SPlan, Env);
      seedInputs(TimedStore);
      exec::RunOptions TimedOpts;
      TimedOpts.Threads = Threads;
      TimedOpts.Batched = Batched;
      TimedOpts.Scheduler = Scheduler;
      TimedOpts.MemBudget = MemBudget;
      TimedOpts.Kernels = KernelMode;
      exec::PlanStats TPS = exec::runPlan(Plan, Kernels, TimedStore,
                                          TimedOpts);
      OS << "timed run (batched " << (Batched ? "on" : "off")
         << ", threads " << TPS.ThreadsUsed << "): " << TPS.Seconds
         << " s\n";
    }
    if (Trace) {
      // Dedicated traced run on fresh storage (counters then cover exactly
      // one execution honoring --threads/--batched, diffable against the
      // --stats oracle in the same invocation).
      storage::ConcreteStorage TraceStore(SPlan, Env);
      seedInputs(TraceStore);
      obs::Tracer &Tracer = obs::Tracer::global();
      Tracer.enable();
      exec::RunOptions TOpts;
      TOpts.Threads = Threads;
      TOpts.Batched = Batched;
      TOpts.Scheduler = Scheduler;
      TOpts.MemBudget = MemBudget;
      TOpts.Kernels = KernelMode;
      exec::runPlan(Plan, Kernels, TraceStore, TOpts);
      obs::Trace T = Tracer.drain();
      Tracer.disable();
      verify::Diagnostics TDiags = obs::checkTrace(Plan, T);
      if (!TracePath.empty()) {
        std::ofstream TF(TracePath);
        if (!TF) {
          std::fprintf(stderr, "error: cannot write %s\n", TracePath.c_str());
          return 1;
        }
        TF << T.toChromeJson();
        std::fprintf(stderr, "wrote trace: %s (%zu spans)\n",
                     TracePath.c_str(), T.Spans.size());
      }
      if (Metrics)
        OS << T.summary();
      if (TDiags.hasErrors()) {
        OS << TDiags.toString();
        TraceFailed = true;
      } else if (Metrics) {
        OS << "trace check: ok (" << T.Spans.size() << " spans)\n";
      }
    }
    if (Report) {
      // The fallback rung runs the untransformed chain's original schedule
      // against its own storage plan — the transformed plan's store may
      // have collapsed arrays the fallback still writes in full.
      graph::Graph RefG = graph::buildGraph(Chain);
      storage::StoragePlan FbSPlan = storage::StoragePlan::build(RefG);
      storage::ConcreteStorage FbStore(FbSPlan, Env);
      seedInputs(FbStore);
      exec::ExecutionPlan FbPlan =
          exec::ExecutionPlan::fromChain(Chain, FbStore, Env, &RefG);

      storage::ConcreteStorage ReportStore(SPlan, Env);
      seedInputs(ReportStore);
      exec::RecoverOptions ROpts;
      ROpts.Run.Threads = Threads;
      ROpts.Run.Batched = Batched;
      ROpts.Run.Harden = Harden;
      ROpts.Run.Scheduler = Scheduler;
      ROpts.Run.MemBudget = MemBudget;
      ROpts.Run.Kernels = KernelMode;
      ROpts.StrictVerify = true;
      ROpts.VerifyKernels = &Kernels;
      ROpts.Fallback = &FbPlan;
      ROpts.FallbackStore = &FbStore;
      if (!ReportJson) {
        // Per-instruction dispatch breakdown, separating the two refusal
        // dimensions: an instruction may batch fine yet stay on the
        // interpreted bodies (and vice versa the JIT column only applies
        // where batching engaged at all).
        jit::Engine *Eng =
            exec::effectiveKernelMode(KernelMode) == exec::KernelMode::Jit
                ? &jit::Engine::global()
                : nullptr;
        for (const exec::NestInstr &I : Plan.Instrs) {
          if (I.External)
            continue;
          exec::RowAnalysis RA = exec::RowPlan::analyze(I, Kernels, Eng);
          OS << "dispatch " << I.Label << ": batched=";
          if (RA.Plan)
            OS << "yes";
          else
            OS << "no (" << exec::rowRefusalName(RA.Refusal) << ")";
          if (Eng) {
            OS << " jit=" << exec::jitRefusalName(RA.Jit);
            if (RA.Plan)
              OS << " (" << RA.JitStmts << "/" << RA.Plan->Stmts.size()
                 << " stmts)";
            if (!RA.JitDetail.empty())
              OS << " [" << RA.JitDetail << "]";
          }
          OS << "\n";
        }
      }
      exec::RunReport RR =
          exec::runWithRecovery(Plan, Kernels, ReportStore, ROpts);
      OS << (ReportJson ? RR.toJson() + "\n" : RR.toString());
      if (!RR.Completed)
        ReportFailed = true;
    }
    Output = OS.str();
  } else if (Emit == "text") {
    Output = graph::toText(G);
  } else if (Emit == "cost") {
    Output = graph::computeCost(G).toString();
  } else if (Emit == "dot") {
    Output = graph::toDot(G, {true, InputPath});
  } else if (Emit == "iscc") {
    Output = codegen::exportIscc(G);
  } else if (Emit == "storage") {
    Output = storage::StoragePlan::build(G).toString();
  } else if (Emit == "code") {
    storage::StoragePlan Plan = storage::StoragePlan::build(G);
    codegen::PrintOptions Options;
    Options.Plan = &Plan;
    codegen::AstPtr Ast = codegen::generate(G);
    Output = codegen::printC(G, *Ast, Options);
  } else if (Emit == "pragmas") {
    Output = parser::printPragmas(G.chain());
  } else {
    std::fprintf(stderr, "error: unknown --emit kind '%s'\n", Emit.c_str());
    return 2;
  }

  if (OutputPath.empty()) {
    std::fputs(Output.c_str(), stdout);
  } else {
    std::ofstream Out(OutputPath);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write %s\n", OutputPath.c_str());
      return 1;
    }
    Out << Output;
  }
  return (VerifyFailed || ReportFailed || TraceFailed) ? 1 : 0;
}

} // namespace

int main(int argc, char **argv) {
  // The library reports recoverable failures as StatusError; anything that
  // escapes to here becomes a structured diagnostic, never a terminate().
  try {
    return runTool(argc, argv);
  } catch (const support::StatusError &E) {
    std::fprintf(stderr, "error: %s\n", E.status().toString().c_str());
    return 1;
  }
}
