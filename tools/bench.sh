#!/usr/bin/env bash
#===------------------------------------------------------------------------===#
#
# Benchmark trajectory: builds and runs the three timing benches and
# writes one BENCH_<name>.json per binary (variant -> key -> seconds,
# including the row-batching on/off pairs), so the perf history of the
# repo is machine-readable. Run from the repo root:
#
#   tools/bench.sh                 # full-size runs into ./BENCH_*.json
#   OUT=perf tools/bench.sh        # JSON files under ./perf/
#   MFD_CELLS=65536 MFD_REPS=3 tools/bench.sh   # quicker sweep
#
# Knobs (inherited by the binaries): MFD_CELLS, MFD_LARGE_BOX, MFD_REPS,
# MFD_THREADS; BUILD selects the build tree (default: build).
#
#===------------------------------------------------------------------------===#

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${BUILD:-build}"
OUT="${OUT:-.}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"
BENCHES=(bench_fig6_small bench_fig6_large bench_tiling_shapes
  bench_shard_scaling bench_serve)

# Stamp the reports' "_meta" block with the commit they measured.
BENCH_COMMIT="${BENCH_COMMIT:-$(git rev-parse --short HEAD 2>/dev/null || echo unknown)}"
export BENCH_COMMIT

if [ ! -d "${BUILD}" ]; then
  cmake --preset default
fi
cmake --build "${BUILD}" --target "${BENCHES[@]}" -j "${JOBS}"

mkdir -p "${OUT}"
for B in "${BENCHES[@]}"; do
  BIN="${BUILD}/bench/${B}"
  if [ ! -x "${BIN}" ]; then
    echo "bench: error: ${BIN} is missing or not executable" >&2
    exit 1
  fi
  JSON="${OUT}/BENCH_${B#bench_}.json"
  echo "== ${B} -> ${JSON} =="
  # Write to a temp file and move into place only on success, so a failed
  # run never leaves a truncated BENCH_*.json behind for the perf history.
  TMP="${JSON}.tmp"
  if ! BENCH_JSON="${TMP}" "${BIN}"; then
    rm -f "${TMP}"
    echo "bench: error: ${B} failed; no ${JSON} written" >&2
    exit 1
  fi
  mv "${TMP}" "${JSON}"
done

echo "bench: wrote ${#BENCHES[@]} reports under ${OUT}/"
