//===- tools/lcdfg-load.cpp - Load generator for lcdfg-serve --------------===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
// Drives a running lcdfg-serve daemon with N concurrent clients and
// reports throughput and latency percentiles as one flat JSON object —
// the shape tools/bench.sh and tools/bench_compare consume.
//
//   lcdfg-load (--unix=PATH | --port=N)
//              [--clients=N]     concurrent connections (default 1)
//              [--requests=N]    total requests across clients (default 100)
//              [--mix=MODE]      warm | cold | mixed (default warm)
//                                  warm:  one spec, cache hits after the
//                                         first request
//                                  cold:  cache:false on every request
//                                         (fresh compile each time)
//                                  mixed: rotate sizes/scripts so hits and
//                                         misses interleave
//              [--chain=FILE]    pragma source (default examples/chains/fig1.lc)
//              [--script=FILE]   transform script for the scripted variants
//              [--size=N]        base size knob (default 64)
//              [--threads=N]     per-request threads knob (default 1)
//              [--checksum]      request result_fnv on every response
//              [--timeout-ms=N]  per-request deadline (default 30000)
//              [--raw=LINE]      send LINE verbatim, print the response (or
//                                the client-side transport status) and exit
//                                — the CI fault matrix's single-shot probe
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace lcdfg;
using serve::jsonField;

namespace {

struct LoadOptions {
  std::string UnixPath;
  int Port = -1;
  int Clients = 1;
  long Requests = 100;
  std::string Mix = "warm";
  std::string ChainFile = "examples/chains/fig1.lc";
  std::string ScriptFile;
  long Size = 64;
  long Threads = 1;
  bool Checksum = false;
  int TimeoutMs = 30000;
  std::string Raw;
};

bool parseIntArg(const char *Arg, const char *Prefix, long &Out) {
  std::size_t Len = std::strlen(Prefix);
  if (std::strncmp(Arg, Prefix, Len) != 0)
    return false;
  char *End = nullptr;
  Out = std::strtol(Arg + Len, &End, 10);
  return End != Arg + Len && *End == '\0';
}

bool parseStrArg(const char *Arg, const char *Prefix, std::string &Out) {
  std::size_t Len = std::strlen(Prefix);
  if (std::strncmp(Arg, Prefix, Len) != 0)
    return false;
  Out = Arg + Len;
  return true;
}

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s (--unix=PATH | --port=N) [--clients=N] "
               "[--requests=N] [--mix=warm|cold|mixed] [--chain=FILE] "
               "[--script=FILE] [--size=N] [--threads=N] [--checksum] "
               "[--timeout-ms=N] [--raw=LINE]\n",
               Argv0);
  return 2;
}

support::Expected<std::string> readFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return support::Status::error(support::ErrorCode::Internal,
                                  "cannot open " + Path);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

support::Expected<serve::Client> connect(const LoadOptions &Opts) {
  if (!Opts.UnixPath.empty())
    return serve::Client::connectUnix(Opts.UnixPath);
  return serve::Client::connectTcp("127.0.0.1", Opts.Port);
}

/// The request line for global request number \p I under the mix policy.
std::string requestLine(const LoadOptions &Opts, const std::string &Chain,
                        const std::string &Script, long I) {
  long Size = Opts.Size;
  bool WithScript = !Script.empty();
  bool Cache = true;
  if (Opts.Mix == "cold") {
    Cache = false;
  } else if (Opts.Mix == "mixed") {
    // Four sizes times script on/off: eight distinct cache keys cycling,
    // so a warm cache still sees a steady trickle of new work.
    static const long Steps[] = {0, 1, 2, 3};
    Size = Opts.Size + 8 * Steps[I % 4];
    WithScript = WithScript && (I % 2 == 0);
  }
  std::string Line = "{" + jsonField("id", I) + "," +
                     jsonField("chain", std::string_view(Chain)) + "," +
                     jsonField("size", static_cast<std::int64_t>(Size)) +
                     "," +
                     jsonField("threads",
                               static_cast<std::int64_t>(Opts.Threads));
  if (WithScript)
    Line += "," + jsonField("script", std::string_view(Script));
  if (!Cache)
    Line += "," + jsonField("cache", false);
  if (Opts.Checksum)
    Line += "," + jsonField("checksum", true);
  Line += "}";
  return Line;
}

double percentile(std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0.0;
  double Rank = P * static_cast<double>(Sorted.size() - 1);
  std::size_t Lo = static_cast<std::size_t>(Rank);
  std::size_t Hi = std::min(Lo + 1, Sorted.size() - 1);
  double Frac = Rank - static_cast<double>(Lo);
  return Sorted[Lo] + (Sorted[Hi] - Sorted[Lo]) * Frac;
}

int runRaw(const LoadOptions &Opts) {
  support::Expected<serve::Client> C = connect(Opts);
  if (!C) {
    std::fprintf(stderr, "lcdfg-load: %s\n", C.error().toString().c_str());
    return 1;
  }
  if (support::Status S = C->sendLine(Opts.Raw); !S) {
    std::printf("{\"ok\":false,\"status\":%s}\n", S.toJson().c_str());
    return 0;
  }
  support::Expected<std::string> Resp = C->recvLine(Opts.TimeoutMs);
  if (!Resp) {
    // The transport-level verdict (E018 drop, E019 stall, E020 garbage)
    // printed in the same shape as a server response, so the fault matrix
    // greps one stream for either side's E-code.
    std::printf("{\"ok\":false,\"status\":%s}\n",
                Resp.error().toJson().c_str());
    return 0;
  }
  std::printf("%s\n", Resp->c_str());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  LoadOptions Opts;
  bool HaveEndpoint = false;

  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    long N = 0;
    if (parseStrArg(A, "--unix=", Opts.UnixPath)) {
      HaveEndpoint = true;
    } else if (parseIntArg(A, "--port=", N)) {
      Opts.Port = static_cast<int>(N);
      HaveEndpoint = true;
    } else if (parseIntArg(A, "--clients=", N)) {
      Opts.Clients = static_cast<int>(N > 0 ? N : 1);
    } else if (parseIntArg(A, "--requests=", N)) {
      Opts.Requests = N > 0 ? N : 1;
    } else if (parseStrArg(A, "--mix=", Opts.Mix)) {
    } else if (parseStrArg(A, "--chain=", Opts.ChainFile)) {
    } else if (parseStrArg(A, "--script=", Opts.ScriptFile)) {
    } else if (parseIntArg(A, "--size=", N)) {
      Opts.Size = N;
    } else if (parseIntArg(A, "--threads=", N)) {
      Opts.Threads = N;
    } else if (std::strcmp(A, "--checksum") == 0) {
      Opts.Checksum = true;
    } else if (parseIntArg(A, "--timeout-ms=", N)) {
      Opts.TimeoutMs = static_cast<int>(N);
    } else if (parseStrArg(A, "--raw=", Opts.Raw)) {
    } else {
      return usage(Argv[0]);
    }
  }
  if (!HaveEndpoint)
    return usage(Argv[0]);
  if (Opts.Mix != "warm" && Opts.Mix != "cold" && Opts.Mix != "mixed")
    return usage(Argv[0]);

  if (!Opts.Raw.empty())
    return runRaw(Opts);

  support::Expected<std::string> Chain = readFile(Opts.ChainFile);
  if (!Chain) {
    std::fprintf(stderr, "lcdfg-load: %s\n",
                 Chain.error().toString().c_str());
    return 1;
  }
  std::string Script;
  if (!Opts.ScriptFile.empty()) {
    support::Expected<std::string> S = readFile(Opts.ScriptFile);
    if (!S) {
      std::fprintf(stderr, "lcdfg-load: %s\n", S.error().toString().c_str());
      return 1;
    }
    Script = *S;
  }

  std::atomic<long> Next{0};
  std::atomic<long> Completed{0};
  std::atomic<long> Errors{0};
  std::vector<std::vector<double>> Latencies(
      static_cast<std::size_t>(Opts.Clients));

  using Clock = std::chrono::steady_clock;
  Clock::time_point T0 = Clock::now();

  std::vector<std::thread> Threads;
  for (int C = 0; C < Opts.Clients; ++C) {
    Threads.emplace_back([&, C] {
      support::Expected<serve::Client> Conn = connect(Opts);
      if (!Conn) {
        Errors.fetch_add(1);
        return;
      }
      while (true) {
        long I = Next.fetch_add(1);
        if (I >= Opts.Requests)
          break;
        std::string Line = requestLine(Opts, *Chain, Script, I);
        Clock::time_point R0 = Clock::now();
        support::Expected<serve::JsonValue> Resp =
            Conn->request(Line, Opts.TimeoutMs);
        double Sec =
            std::chrono::duration<double>(Clock::now() - R0).count();
        if (!Resp || !Resp->isObject()) {
          Errors.fetch_add(1);
          // Reconnect: a dead connection fails every later request.
          Conn = connect(Opts);
          if (!Conn)
            break;
          continue;
        }
        const serve::JsonValue *Ok = Resp->find("ok");
        if (!Ok || !Ok->asBool()) {
          Errors.fetch_add(1);
          continue;
        }
        Latencies[static_cast<std::size_t>(C)].push_back(Sec);
        Completed.fetch_add(1);
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  double Elapsed = std::chrono::duration<double>(Clock::now() - T0).count();

  std::vector<double> All;
  for (const std::vector<double> &L : Latencies)
    All.insert(All.end(), L.begin(), L.end());
  std::sort(All.begin(), All.end());
  double Mean = 0.0;
  for (double S : All)
    Mean += S;
  if (!All.empty())
    Mean /= static_cast<double>(All.size());

  // Final cache counters from the server itself.
  std::int64_t Hits = 0, Misses = 0;
  if (support::Expected<serve::Client> C = connect(Opts)) {
    if (support::Expected<serve::JsonValue> R =
            C->request("{\"cmd\":\"stats\"}", Opts.TimeoutMs)) {
      if (const serve::JsonValue *St = R->find("stats")) {
        Hits = St->find("hits") ? St->find("hits")->asInt() : 0;
        Misses = St->find("misses") ? St->find("misses")->asInt() : 0;
      }
    }
  }
  double HitRate =
      Hits + Misses > 0
          ? static_cast<double>(Hits) / static_cast<double>(Hits + Misses)
          : 0.0;

  std::string Out =
      "{" + jsonField("clients", static_cast<std::int64_t>(Opts.Clients)) +
      "," + jsonField("requests", static_cast<std::int64_t>(Opts.Requests)) +
      "," + jsonField("completed", static_cast<std::int64_t>(Completed.load())) +
      "," + jsonField("errors", static_cast<std::int64_t>(Errors.load())) +
      "," + jsonField("mix", std::string_view(Opts.Mix)) + "," +
      jsonField("elapsed", Elapsed) + "," +
      jsonField("rps", Elapsed > 0.0
                           ? static_cast<double>(Completed.load()) / Elapsed
                           : 0.0) +
      "," + jsonField("p50", percentile(All, 0.50)) + "," +
      jsonField("p99", percentile(All, 0.99)) + "," +
      jsonField("mean", Mean) + "," + jsonField("hits", Hits) + "," +
      jsonField("misses", Misses) + "," + jsonField("hit_rate", HitRate) +
      "}";
  std::printf("%s\n", Out.c_str());
  return 0;
}
