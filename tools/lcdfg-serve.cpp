//===- tools/lcdfg-serve.cpp - The plan-serving daemon --------------------===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
// Serves compile+run requests over a newline-delimited JSON protocol
// (docs/SERVING.md), amortizing the compile pipeline behind an LRU plan
// cache and isolating each request's failures behind the degradation
// ladder.
//
//   lcdfg-serve (--unix=PATH | --port=N)
//               [--capacity=N]      compiled plans kept (default 64)
//               [--budget-mb=N]     admission byte budget (default off)
//               [--max-clients=N]   concurrent connections (default 32)
//               [--max-concurrent=N] running requests (default 2x hw)
//               [--heavy-mb=N]      heavy-lane traffic threshold (64)
//               [--max-size=N]      "size" knob cap (default 512)
//               [--idle-ms=N]       frame read deadline (default 10000)
//               [--wedge-ms=N]      admission wait deadline (default 10000)
//               [--no-shutdown]     refuse the {"cmd":"shutdown"} request
//
// On successful startup one "ready" JSON line is printed to stdout (with
// the bound port for --port=0 servers) so harnesses can synchronize; the
// daemon then runs until SIGINT/SIGTERM or a shutdown command, prints its
// final stats line, and exits 0.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

using namespace lcdfg;

namespace {

std::atomic<int> GSignal{0};

void onSignal(int Sig) { GSignal.store(Sig); }

bool parseIntArg(const char *Arg, const char *Prefix, long &Out) {
  std::size_t Len = std::strlen(Prefix);
  if (std::strncmp(Arg, Prefix, Len) != 0)
    return false;
  char *End = nullptr;
  Out = std::strtol(Arg + Len, &End, 10);
  return End != Arg + Len && *End == '\0';
}

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s (--unix=PATH | --port=N) [--capacity=N] "
               "[--budget-mb=N] [--max-clients=N] [--max-concurrent=N] "
               "[--heavy-mb=N] [--max-size=N] [--idle-ms=N] [--wedge-ms=N] "
               "[--no-shutdown]\n",
               Argv0);
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  serve::ServerOptions Opts;
  bool HaveEndpoint = false;

  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    long N = 0;
    if (std::strncmp(A, "--unix=", 7) == 0) {
      Opts.UnixPath = A + 7;
      HaveEndpoint = true;
    } else if (parseIntArg(A, "--port=", N)) {
      Opts.TcpPort = static_cast<int>(N);
      HaveEndpoint = true;
    } else if (parseIntArg(A, "--capacity=", N)) {
      Opts.CacheCapacity = static_cast<std::size_t>(N > 0 ? N : 1);
    } else if (parseIntArg(A, "--budget-mb=", N)) {
      Opts.BudgetBytes = N << 20;
    } else if (parseIntArg(A, "--max-clients=", N)) {
      Opts.MaxClients = static_cast<int>(N);
    } else if (parseIntArg(A, "--max-concurrent=", N)) {
      Opts.MaxConcurrent = static_cast<int>(N);
    } else if (parseIntArg(A, "--heavy-mb=", N)) {
      Opts.HeavyBytes = N << 20;
    } else if (parseIntArg(A, "--max-size=", N)) {
      Opts.MaxSize = N;
    } else if (parseIntArg(A, "--idle-ms=", N)) {
      Opts.IdleTimeoutMs = static_cast<int>(N);
    } else if (parseIntArg(A, "--wedge-ms=", N)) {
      Opts.WedgeTimeoutMs = static_cast<int>(N);
    } else if (std::strcmp(A, "--no-shutdown") == 0) {
      Opts.AllowShutdown = false;
    } else {
      return usage(Argv[0]);
    }
  }
  if (!HaveEndpoint)
    return usage(Argv[0]);

  serve::Server Srv(Opts);
  if (support::Status S = Srv.start(); !S) {
    std::fprintf(stderr, "lcdfg-serve: %s\n", S.toString().c_str());
    return 1;
  }

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  std::string Ready = "{" + serve::jsonField("ready", true) + ",";
  if (!Opts.UnixPath.empty())
    Ready += serve::jsonField("unix", std::string_view(Opts.UnixPath));
  else
    Ready += serve::jsonField("port", static_cast<std::int64_t>(Srv.port()));
  Ready += "," +
           serve::jsonField("capacity",
                            static_cast<std::int64_t>(Opts.CacheCapacity)) +
           "}";
  std::printf("%s\n", Ready.c_str());
  std::fflush(stdout);

  while (GSignal.load() == 0 && !Srv.stopRequested())
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  Srv.stop();

  serve::ServerStats St = Srv.stats();
  std::fprintf(stderr,
               "lcdfg-serve: served %lld requests (%lld admitted, %lld "
               "hits, %lld misses, %lld evictions, %lld errors)\n",
               static_cast<long long>(St.Requests),
               static_cast<long long>(St.Admitted),
               static_cast<long long>(St.Hits),
               static_cast<long long>(St.Misses),
               static_cast<long long>(St.Evictions),
               static_cast<long long>(St.Errors));
  return 0;
}
