//===- bench/bench_godunov.cpp --------------------------------------------===//
//
// Reproduces the Section 5.6 case study: the ComputeWHalf subroutine of
// AMR-Godunov before and after the M2DFG-guided fusion of Figure 14.
// Paper result: ~17% execution-time reduction and ~14KB of temporary space
// saved per box (their Fortran granularity; ours is reported exactly).
// Also prints the Figure 13/14 graphs, their cost-model values, and the
// storage allocation.
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "godunov/Godunov.h"
#include "godunov/GodunovGraph.h"
#include "graph/CostModel.h"
#include "graph/DotExport.h"
#include "graph/GraphBuilder.h"
#include "storage/LivenessAllocator.h"
#include "storage/ReuseDistance.h"

#include <cstdio>

using namespace lcdfg;
using namespace lcdfg::bench;
using namespace lcdfg::graph;

int main() {
  Config Cfg = Config::fromEnvironment();
  const int N = 16; // the paper holds AMR-Godunov boxes at 16^3
  int Boxes = static_cast<int>(
      std::max<long>(1, Cfg.TotalCells / (8L * N * N * N)));

  // --- graphs and symbolic results -------------------------------------
  ir::LoopChain Chain = gdnv::buildComputeWHalfChain();
  Graph Before = buildGraph(Chain);
  CostReport CostBefore = computeCost(Before);
  storage::Allocation AllocBefore = storage::allocateSpaces(Before);

  ir::LoopChain Chain2 = gdnv::buildComputeWHalfChain();
  Graph After = buildGraph(Chain2);
  gdnv::applyGodunovFusion(After);
  storage::reduceStorage(After);
  CostReport CostAfter = computeCost(After);
  storage::Allocation AllocAfter = storage::allocateSpaces(After);

  std::printf("Section 5.6 / Figures 13-14: ComputeWHalf\n");
  std::printf("\n== Figure 13 (original) cost model ==\n%s",
              CostBefore.toString().c_str());
  std::printf("allocation: %s\n", AllocBefore.Total.toString().c_str());
  std::printf("\n== Figure 14 (fused) cost model ==\n%s",
              CostAfter.toString().c_str());
  std::printf("allocation: %s\n", AllocAfter.Total.toString().c_str());

  long TempBefore = gdnv::temporaryElementsOriginal(N);
  long TempAfter = gdnv::temporaryElementsFused(N);
  std::printf("\ntemporary storage per box (N=%d, %d components): %ld -> "
              "%ld elements (%.1f KB saved)\n",
              N, gdnv::NumComps, TempBefore, TempAfter,
              static_cast<double>(TempBefore - TempAfter) * 8.0 / 1024.0);

  // --- measured runtimes ------------------------------------------------
  std::vector<rt::Box> In;
  In.reserve(Boxes);
  for (int I = 0; I < Boxes; ++I) {
    In.emplace_back(N, gdnv::GhostDepth, gdnv::NumComps);
    In.back().fillPseudoRandom(0x90d + I);
  }
  auto Out = gdnv::makeOutputs(Boxes, N);

  printHeader("ComputeWHalf execution time",
              "threads | original | fused | reduction");
  for (int T : Cfg.threadSweep()) {
    double TOrig = timeBestOf(Cfg.Reps,
                              [&] { gdnv::runOriginal(In, Out, T); });
    double TFused =
        timeBestOf(Cfg.Reps, [&] { gdnv::runFused(In, Out, T); });
    char Pct[32];
    std::snprintf(Pct, sizeof(Pct), "%.1f%%",
                  100.0 * (1.0 - TFused / TOrig));
    printRow({"T=" + std::to_string(T), fmtSeconds(TOrig),
              fmtSeconds(TFused), Pct});
  }
  std::printf("paper: 17%% reduction on a 20-core Ivy Bridge.\n");
  std::printf("max rel diff original vs fused: %.3g\n",
              gdnv::verifySchedules(N));

  std::printf("\n--- Figure 13 dot ---\n%s",
              toDot(Before, {false, "ComputeWHalf original"}).c_str());
  std::printf("\n--- Figure 14 dot ---\n%s",
              toDot(After, {false, "ComputeWHalf fused"}).c_str());
  return 0;
}
