//===- bench/bench_fig11_overlap.cpp --------------------------------------===//
//
// Reproduces Figure 11: the two overlapped tiling techniques (fusion
// within tiles vs fusion of tiles) against the series-of-loops baseline,
// per box size and thread count. Paper shape: fusion-within-tiles beats
// fusion-of-tiles everywhere and beats the baseline as threads grow.
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include <cstdio>

using namespace lcdfg;
using namespace lcdfg::bench;
using namespace lcdfg::mfd;

namespace {

void runCase(const char *Label, const Problem &P, const Config &Cfg) {
  std::vector<rt::Box> In = makeInputs(P, 0xf1b0);
  std::vector<rt::Box> Out = makeOutputs(P);

  printHeader(std::string("Figure 11 — ") + Label,
              "threads | series | fusionOfTiles | fusionWithinTiles");
  for (int T : Cfg.threadSweep()) {
    RunConfig Run;
    Run.Threads = T;
    double TSeries =
        timeVariant(Variant::SeriesReduced, In, Out, Run, Cfg.Reps);
    double TOf = timeVariant(Variant::OverlapOfTiles, In, Out, Run, Cfg.Reps);
    double TWithin =
        timeVariant(Variant::OverlapWithinTiles, In, Out, Run, Cfg.Reps);
    printRow({"T=" + std::to_string(T), fmtSeconds(TSeries),
              fmtSeconds(TOf), fmtSeconds(TWithin)});
  }
}

} // namespace

int main() {
  Config Cfg = Config::fromEnvironment();
  std::printf("Figure 11: overlapped tiling comparison (intra-tile "
              "schedule is the variable)\n");
  runCase("small boxes", Cfg.smallProblem(), Cfg);
  runCase("large boxes", Cfg.largeProblem(), Cfg);

  // Tile-size ablation for the winning technique.
  Problem P = Cfg.largeProblem();
  std::vector<rt::Box> In = makeInputs(P, 0xf1b1);
  std::vector<rt::Box> Out = makeOutputs(P);
  printHeader("tile-size ablation (fusion within tiles, large boxes)",
              "tile | time | temp elements per tile");
  for (int T : {4, 8, 16, 32}) {
    if (T > P.BoxSize)
      continue;
    RunConfig Run;
    Run.Threads = Cfg.MaxThreads;
    Run.TileSize = T;
    printRow({"T=" + std::to_string(T),
              fmtSeconds(timeVariant(Variant::OverlapWithinTiles, In, Out,
                                     Run, Cfg.Reps)),
              std::to_string(
                  temporaryElements(Variant::OverlapWithinTiles,
                                    P.BoxSize, T))});
  }
  std::printf("\npaper shape: fusion within tiles outperforms fusion of "
              "tiles for both box sizes at every thread count.\n");
  return 0;
}
