//===- bench/bench_unsharp.cpp --------------------------------------------===//
//
// Extension benchmark (beyond the paper's figures): the unsharp-mask image
// pipeline — PolyMage's flagship benchmark and the domain Halide targets —
// expressed as a loop chain and scheduled with the M2DFG machinery. Shows
// the same story as MiniFluxDiv in the image domain: fusion plus
// reuse-distance line buffers collapse three full-image intermediates to
// five scanlines and win on runtime.
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "graph/AutoScheduler.h"
#include "graph/CostModel.h"
#include "graph/GraphBuilder.h"
#include "pipelines/UnsharpMask.h"
#include "storage/ReuseDistance.h"

#include <cstdio>

using namespace lcdfg;
using namespace lcdfg::bench;
using namespace lcdfg::pipelines;

int main() {
  Config Cfg = Config::fromEnvironment();
  int N = 1536;
  if (Cfg.TotalCells < (1L << 21))
    N = 768;

  // Cost model on the chain.
  ir::LoopChain Chain = buildUnsharpChain();
  graph::Graph Series = graph::buildGraph(Chain);
  graph::CostReport SeriesCost = graph::computeCost(Series);
  graph::Graph Fused = graph::buildGraph(Chain);
  graph::AutoScheduleResult Auto = graph::autoSchedule(Fused);

  std::printf("unsharp mask, %dx%d image\n", N, N);
  std::printf("\ncost model: series S_R = %s, fused S_R = %s (found in %u "
              "auto-schedule moves)\n",
              SeriesCost.TotalRead.toString().c_str(),
              Auto.FinalRead.toString().c_str(), Auto.StepsApplied);
  std::printf("temporaries: %ld doubles (series) -> %ld doubles (fused "
              "line buffers)\n",
              temporaryElementsSeries(N), temporaryElementsFused(N));

  Image In(N);
  In.fillPseudoRandom(0x1446);
  Image OutA(N), OutB(N);

  printHeader("unsharp mask runtime", "schedule | time");
  double TSeries =
      timeBestOf(Cfg.Reps, [&] { runUnsharpSeries(In, OutA); });
  double TFused = timeBestOf(Cfg.Reps, [&] { runUnsharpFused(In, OutB); });
  printRow({"series of loops", fmtSeconds(TSeries)});
  printRow({"fused + line buffers", fmtSeconds(TFused)});
  char Speed[32];
  std::snprintf(Speed, sizeof(Speed), "%.2fx", TSeries / TFused);
  printRow({"speedup", Speed});
  std::printf("max |series - fused| = %.3g\n", maxAbsDiff(OutA, OutB));
  return 0;
}
