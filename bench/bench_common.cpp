//===- bench/bench_common.cpp ---------------------------------------------===//

#include "bench_common.h"

#include "codegen/Generator.h"
#include "graph/GraphBuilder.h"
#include "jit/JitEngine.h"
#include "minifluxdiv/Spec.h"
#include "storage/ReuseDistance.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

using namespace lcdfg;
using namespace lcdfg::bench;

namespace {

long envLong(const char *Name, long Default) {
  const char *V = std::getenv(Name);
  if (!V || !*V)
    return Default;
  return std::atol(V);
}

} // namespace

Config Config::fromEnvironment() {
  Config C;
  C.TotalCells = envLong("MFD_CELLS", 1L << 21);
  C.LargeBox = static_cast<int>(envLong("MFD_LARGE_BOX", 64));
  C.Reps = static_cast<int>(envLong("MFD_REPS", 3));
  C.MaxThreads = static_cast<int>(envLong("MFD_THREADS", 4));
  return C;
}

std::vector<int> Config::threadSweep() const {
  std::vector<int> Sweep;
  for (int T = 1; T <= MaxThreads; T *= 2)
    Sweep.push_back(T);
  return Sweep;
}

double bench::timeBestOf(int Reps, const std::function<void()> &Fn) {
  Fn(); // warm-up
  double Best = 1e300;
  for (int R = 0; R < Reps; ++R) {
    auto T0 = std::chrono::steady_clock::now();
    Fn();
    auto T1 = std::chrono::steady_clock::now();
    double S = std::chrono::duration<double>(T1 - T0).count();
    if (S < Best)
      Best = S;
  }
  return Best;
}

double bench::timeVariant(mfd::Variant V, const std::vector<rt::Box> &In,
                          std::vector<rt::Box> &Out,
                          const mfd::RunConfig &Run, int Reps) {
  return timeBestOf(Reps, [&] { mfd::runVariant(V, In, Out, Run); });
}

void bench::printHeader(const std::string &Title,
                        const std::string &Columns) {
  std::printf("\n== %s ==\n%s\n", Title.c_str(), Columns.c_str());
}

void bench::printRow(const std::vector<std::string> &Cells) {
  for (std::size_t I = 0; I < Cells.size(); ++I)
    std::printf("%s%-26s", I ? " " : "", Cells[I].c_str());
  std::printf("\n");
}

std::string bench::fmtSeconds(double S) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.4gs", S);
  return Buf;
}

void JsonReport::record(const std::string &Variant, const std::string &Key,
                        double Seconds) {
  if (Rows.find(Variant) == Rows.end())
    Order.push_back(Variant);
  Rows[Variant][Key] = Seconds;
}

bool JsonReport::write() const {
  const char *Path = std::getenv("BENCH_JSON");
  if (!Path || !*Path)
    return true;
  std::ofstream Out(Path);
  if (!Out)
    return false;
  const char *Commit = std::getenv("BENCH_COMMIT");
  const Config C = Config::fromEnvironment();
  Out << "{\n";
  // The run's provenance, so a committed baseline records what produced
  // it; bench_compare ignores this variant when diffing.
  Out << "  \"_meta\": {\"compiler\": \"" << __VERSION__ << "\", "
      << "\"commit\": \"" << (Commit && *Commit ? Commit : "unknown")
      << "\", \"cells\": " << C.TotalCells << ", \"large_box\": "
      << C.LargeBox << ", \"reps\": " << C.Reps << ", \"threads\": "
      << C.MaxThreads << ", \"widen\": " << FuseAllModuloWiden << "}"
      << (Order.empty() ? "" : ",") << "\n";
  for (std::size_t V = 0; V < Order.size(); ++V) {
    const auto &Keys = Rows.at(Order[V]);
    Out << "  \"" << Order[V] << "\": {";
    std::size_t K = 0;
    for (const auto &[Key, Seconds] : Keys) {
      char Buf[48];
      std::snprintf(Buf, sizeof(Buf), "%.9g", Seconds);
      Out << (K++ ? ", " : "") << "\"" << Key << "\": " << Buf;
    }
    Out << "}" << (V + 1 < Order.size() ? "," : "") << "\n";
  }
  Out << "}\n";
  std::printf("wrote %s\n", Path);
  return true;
}

double bench::timePlanRun(const exec::ExecutionPlan &Plan,
                          const codegen::KernelRegistry &Kernels,
                          storage::ConcreteStorage &Store,
                          const exec::RunOptions &Opts, int Reps) {
  return timeBestOf(Reps,
                    [&] { exec::runPlan(Plan, Kernels, Store, Opts); });
}

void bench::timeSchedulerStrategies(mfd::Variant V,
                                    const std::vector<rt::Box> &In,
                                    std::vector<rt::Box> &Out,
                                    const Config &Cfg, JsonReport &Json) {
  const std::string Name = mfd::variantName(V);
  const std::string RowName = "sched-" + Name;
  printHeader(Name + " — wavefront vs list scheduler",
              "scheduler / threads seconds max-idle-share");

  std::vector<int> Threads{2};
  if (Cfg.MaxThreads > 2)
    Threads.push_back(Cfg.MaxThreads);
  const std::pair<exec::SchedulerKind, const char *> Scheds[] = {
      {exec::SchedulerKind::Wavefront, "wavefront"},
      {exec::SchedulerKind::List, "list"},
  };
  for (const auto &[Kind, SchedName] : Scheds) {
    for (int T : Threads) {
      mfd::RunConfig Run;
      Run.Threads = T;
      Run.Scheduler = Kind;
      // Stats carry the per-worker busy times of the last repetition; the
      // best-of timing and the idle shares come from the same sweep.
      exec::PlanStats Stats;
      double S = timeBestOf(Cfg.Reps, [&] {
        mfd::runVariant(V, In, Out, Run, &Stats);
      });
      double Idle = Stats.maxIdleShare();
      const std::string Key =
          std::string(SchedName) + "_T" + std::to_string(T);
      Json.record(RowName, Key, S);
      Json.record(RowName, "idle_" + Key, Idle);
      char IdleBuf[32];
      std::snprintf(IdleBuf, sizeof(IdleBuf), "%.1f%%", Idle * 100.0);
      printRow({std::string(SchedName) + " T=" + std::to_string(T),
                fmtSeconds(S), IdleBuf});
    }
  }
}

void bench::timeCompiledSchedules(std::int64_t N, int Reps,
                                  JsonReport &Json) {
  exec::ParamEnv Env{{"N", N}};
  printHeader("compiled plans at N=" + std::to_string(N) +
                  " — row batching on vs off",
              "schedule / batched_off batched_on speedup");

  auto seed = [](const ir::LoopChain &Chain, storage::ConcreteStorage &S) {
    for (const std::string &Name : Chain.arrayNames())
      if (Chain.array(Name).Kind == ir::StorageKind::PersistentInput) {
        std::vector<double> &Buf = S.spaceOf(Name);
        for (std::size_t I = 0; I < Buf.size(); ++I)
          Buf[I] = 0.001 * static_cast<double>((I * 2654435761u) % 1000u);
      }
  };
  auto report = [&](const std::string &Name,
                    const exec::ExecutionPlan &Plan,
                    const codegen::KernelRegistry &Kernels,
                    storage::ConcreteStorage &Store) {
    exec::RunOptions Opts; // Threads = 1: isolate the dispatch cost.
    Opts.Batched = false;
    double Off = timePlanRun(Plan, Kernels, Store, Opts, Reps);
    Opts.Batched = true;
    double On = timePlanRun(Plan, Kernels, Store, Opts, Reps);
    Json.record(Name, "batched_off", Off);
    Json.record(Name, "batched_on", On);
    char Ratio[32];
    std::snprintf(Ratio, sizeof(Ratio), "%.2fx", Off / On);
    printRow({Name, fmtSeconds(Off), fmtSeconds(On), Ratio});
    // The JIT variant rides as its own row, present only when a host
    // compiler is reachable — bench_compare treats the jit- prefix as
    // optional, so compiler-less machines still gate the other rows.
    if (exec::effectiveKernelMode(exec::KernelMode::Jit) ==
            exec::KernelMode::Jit &&
        jit::Engine::global().available()) {
      Opts.Kernels = exec::KernelMode::Jit;
      double J = timePlanRun(Plan, Kernels, Store, Opts, Reps);
      Json.record("jit-" + Name, "batched_jit", J);
      std::snprintf(Ratio, sizeof(Ratio), "%.2fx vs interp", On / J);
      printRow({"jit-" + Name, fmtSeconds(J), Ratio});
    }
  };

  // Series of loops: one plan instruction per nest in chain order.
  {
    ir::LoopChain Chain = mfd::buildChain3D();
    codegen::KernelRegistry Kernels;
    mfd::registerKernels(Chain, Kernels);
    graph::Graph G = graph::buildGraph(Chain);
    storage::StoragePlan SPlan =
        storage::StoragePlan::build(G, /*UseAllocation=*/false);
    storage::ConcreteStorage Store(SPlan, Env);
    seed(Chain, Store);
    exec::ExecutionPlan Plan =
        exec::ExecutionPlan::fromChain(Chain, Store, Env, &G);
    report("series", Plan, Kernels, Store);
  }

  // Fuse-all with reduced storage: the schedule whose per-point scalar
  // overhead is largest (many fused statements, modulo-mapped buffers).
  // The reuse-distance windows are widened 8x: exact windows cap batch
  // segments at the producer/consumer lag (2 points here), while widened
  // windows satisfy M >= 2*lag for every pair and batch whole rows. Both
  // the off and on runs use the same widened plan, so the ratio isolates
  // the batching itself.
  {
    ir::LoopChain Chain = mfd::buildChain3D();
    codegen::KernelRegistry Kernels;
    mfd::registerKernels(Chain, Kernels);
    graph::Graph G = graph::buildGraph(Chain);
    mfd::applyFuseAllLevels(G);
    storage::reduceStorage(G);
    storage::StoragePlan SPlan = storage::StoragePlan::build(
        G, /*UseAllocation=*/false, FuseAllModuloWiden);
    storage::ConcreteStorage Store(SPlan, Env);
    seed(Chain, Store);
    codegen::AstPtr Ast = codegen::generate(G);
    exec::ExecutionPlan Plan =
        exec::ExecutionPlan::fromAst(G, *Ast, Store, Env);
    report("fuseAll-reduced", Plan, Kernels, Store);
  }
}
