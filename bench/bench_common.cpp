//===- bench/bench_common.cpp ---------------------------------------------===//

#include "bench_common.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

using namespace lcdfg;
using namespace lcdfg::bench;

namespace {

long envLong(const char *Name, long Default) {
  const char *V = std::getenv(Name);
  if (!V || !*V)
    return Default;
  return std::atol(V);
}

} // namespace

Config Config::fromEnvironment() {
  Config C;
  C.TotalCells = envLong("MFD_CELLS", 1L << 21);
  C.LargeBox = static_cast<int>(envLong("MFD_LARGE_BOX", 64));
  C.Reps = static_cast<int>(envLong("MFD_REPS", 3));
  C.MaxThreads = static_cast<int>(envLong("MFD_THREADS", 4));
  return C;
}

std::vector<int> Config::threadSweep() const {
  std::vector<int> Sweep;
  for (int T = 1; T <= MaxThreads; T *= 2)
    Sweep.push_back(T);
  return Sweep;
}

double bench::timeBestOf(int Reps, const std::function<void()> &Fn) {
  Fn(); // warm-up
  double Best = 1e300;
  for (int R = 0; R < Reps; ++R) {
    auto T0 = std::chrono::steady_clock::now();
    Fn();
    auto T1 = std::chrono::steady_clock::now();
    double S = std::chrono::duration<double>(T1 - T0).count();
    if (S < Best)
      Best = S;
  }
  return Best;
}

double bench::timeVariant(mfd::Variant V, const std::vector<rt::Box> &In,
                          std::vector<rt::Box> &Out,
                          const mfd::RunConfig &Run, int Reps) {
  return timeBestOf(Reps, [&] { mfd::runVariant(V, In, Out, Run); });
}

void bench::printHeader(const std::string &Title,
                        const std::string &Columns) {
  std::printf("\n== %s ==\n%s\n", Title.c_str(), Columns.c_str());
}

void bench::printRow(const std::vector<std::string> &Cells) {
  for (std::size_t I = 0; I < Cells.size(); ++I)
    std::printf("%s%-26s", I ? " " : "", Cells[I].c_str());
  std::printf("\n");
}

std::string bench::fmtSeconds(double S) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.4gs", S);
  return Buf;
}
