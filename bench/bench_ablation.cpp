//===- bench/bench_ablation.cpp -------------------------------------------===//
//
// Ablations of the design choices DESIGN.md calls out, beyond the paper's
// own figures:
//   1. the wide-stencil refinement of the S_c stream metric (Section 3.3
//      sketches it; here it is measured across chains);
//   2. the liveness-based space allocator vs single-assignment storage;
//   3. the auto-scheduler's stream budget vs the S_R it can reach;
//   4. wavefront tile parallelism vs tile size for a fused pipeline.
//
//===----------------------------------------------------------------------===//

#include "godunov/GodunovGraph.h"
#include "graph/AutoScheduler.h"
#include "graph/CostModel.h"
#include "graph/GraphBuilder.h"
#include "graph/Transforms.h"
#include "minifluxdiv/Spec.h"
#include "pipelines/UnsharpMask.h"
#include "storage/LivenessAllocator.h"
#include "storage/ReuseDistance.h"
#include "tiling/Wavefront.h"

#include <cstdio>
#include <functional>

using namespace lcdfg;
using namespace lcdfg::graph;

namespace {

void wideStencilAblation() {
  std::printf("== ablation 1: S_c stream metric, plain vs wide-stencil "
              "refinement ==\n");
  struct Case {
    const char *Name;
    std::function<ir::LoopChain()> Build;
  };
  const Case Cases[] = {
      {"minifluxdiv-2d", [] { return mfd::buildChain2D(); }},
      {"minifluxdiv-3d", [] { return mfd::buildChain3D(); }},
      {"unsharp-mask", [] { return pipelines::buildUnsharpChain(); }},
      {"computeWHalf", [] { return gdnv::buildComputeWHalfChain(); }},
  };
  for (const Case &C : Cases) {
    ir::LoopChain Chain = C.Build();
    Graph G = buildGraph(Chain);
    CostOptions Wide;
    Wide.CountWideStencilStreams = true;
    std::printf("%-16s S_c = %u, refined = %u\n", C.Name,
                computeCost(G).MaxStreams, computeCost(G, Wide).MaxStreams);
  }
}

void allocatorAblation() {
  std::printf("\n== ablation 2: liveness allocator vs single assignment "
              "(temporary elements at N=64) ==\n");
  struct Case {
    const char *Name;
    std::function<void(Graph &)> Recipe;
  };
  const Case Cases[] = {
      {"series", nullptr},
      {"fuse within",
       [](Graph &G) {
         mfd::applyFuseWithinDirections(G);
         storage::reduceStorage(G);
       }},
      {"fuse all",
       [](Graph &G) {
         mfd::applyFuseAllLevels(G);
         storage::reduceStorage(G);
       }},
  };
  for (const Case &C : Cases) {
    ir::LoopChain Chain = mfd::buildChain3D();
    Graph G = buildGraph(Chain);
    if (C.Recipe)
      C.Recipe(G);
    storage::Allocation A = storage::allocateSpaces(G);
    std::printf("%-12s shared: %lld   single-assignment: %lld   (%zu "
                "spaces)\n",
                C.Name, static_cast<long long>(A.Total.evaluate(64)),
                static_cast<long long>(A.SsaTotal.evaluate(64)),
                A.Spaces.size());
  }
}

void budgetAblation() {
  std::printf("\n== ablation 3: auto-scheduler stream budget vs achieved "
              "S_R (minifluxdiv-2d, N=64) ==\n");
  for (unsigned Budget = 1; Budget <= 6; ++Budget) {
    ir::LoopChain Chain = mfd::buildChain2D();
    Graph G = buildGraph(Chain);
    AutoScheduleOptions Options;
    Options.MaxStreams = Budget;
    AutoScheduleResult R = autoSchedule(G, Options);
    std::printf("budget %u: %2u moves, S_R@64 = %lld, S_c = %u\n", Budget,
                R.StepsApplied,
                static_cast<long long>(R.FinalRead.evaluate(64)),
                R.FinalStreams);
  }
}

void wavefrontAblation() {
  std::printf("\n== ablation 4: wavefront tile parallelism (fused unsharp "
              "pipeline, 64x64) ==\n");
  ir::LoopChain Chain = pipelines::buildUnsharpChain();
  Graph G = buildGraph(Chain);
  graph::fuseProducerConsumer(G, G.findStmt("blurx"), G.findStmt("blury"));
  graph::fuseProducerConsumer(G, G.findStmt("blurx+blury"),
                              G.findStmt("sharpen"));
  graph::fuseProducerConsumer(G, G.findStmt("blurx+blury+sharpen"),
                              G.findStmt("mask"));
  NodeId Node = G.findStmt("blurx+blury+sharpen+mask");
  tiling::ParamEnv Env{{"N", 64}};
  for (std::int64_t T : {8, 16, 32}) {
    tiling::WavefrontPlan Plan =
        tiling::wavefrontTiling(G, Node, {T, T}, Env);
    std::printf("tile %2lld: %3zu tiles, %2zu fronts, max parallelism "
                "%zu%s\n",
                static_cast<long long>(T), Plan.Tiles.size(),
                Plan.Fronts.size(), Plan.maxParallelism(),
                Plan.isSerial() ? " (serial)" : "");
  }
}

} // namespace

int main() {
  wideStencilAblation();
  allocatorAblation();
  budgetAblation();
  wavefrontAblation();
  return 0;
}
