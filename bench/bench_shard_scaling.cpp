//===- bench/bench_shard_scaling.cpp --------------------------------------===//
//
// Weak scaling of the sharded multi-process timestepper: the box grid
// grows with the shard count (3 z-rows of 2x2 boxes per shard), so each
// worker owns a constant slab and the wall time measures coordination —
// fork/checkpoint overhead plus the overlapped ghost exchange — rather
// than shrinking compute. Rows: shards1 (in-process serial), shards2,
// shards4.
//
// The whole harness stays single-threaded between forks (runSharded
// requires a single-threaded parent; the workers spawn their own local
// threads).
//
//===----------------------------------------------------------------------===//

#include "shard/ShardRunner.h"

#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace lcdfg;

namespace {

constexpr int BoxN = 10;
constexpr int Ghost = 1;
constexpr int Comps = 2;
constexpr int Steps = 4;

std::vector<rt::Box> makeState(const rt::GridLayout &Layout) {
  std::vector<rt::Box> Boxes;
  Boxes.reserve(static_cast<std::size_t>(Layout.numBoxes()));
  for (int I = 0; I < Layout.numBoxes(); ++I) {
    Boxes.emplace_back(BoxN, Ghost, Comps);
    Boxes.back().fillPseudoRandom(0xbe9cULL +
                                  static_cast<std::uint64_t>(I) * 911);
  }
  return Boxes;
}

void averageStep(const rt::Box &In, rt::Box &Out) {
  for (int C = 0; C < In.numComponents(); ++C)
    for (int Z = 0; Z < In.size(); ++Z)
      for (int Y = 0; Y < In.size(); ++Y)
        for (int X = 0; X < In.size(); ++X)
          Out.at(C, Z, Y, X) =
              (In.at(C, Z, Y, X) + In.at(C, Z - 1, Y, X) +
               In.at(C, Z + 1, Y, X) + In.at(C, Z, Y - 1, X) +
               In.at(C, Z, Y + 1, X) + In.at(C, Z, Y, X - 1) +
               In.at(C, Z, Y, X + 1)) /
              7.0;
}

} // namespace

int main() {
  const bench::Config Cfg = bench::Config::fromEnvironment();
  bench::JsonReport Json;

  bench::printHeader(
      "Sharded timestepper weak scaling (3 z-rows of 2x2 boxes per shard, "
      "box " + std::to_string(BoxN) + "^3 x" + std::to_string(Comps) +
          " comps, " + std::to_string(Steps) + " steps)",
      "shards  seconds    exchanges  bytes      rung");

  for (int Shards : {1, 2, 4}) {
    const rt::GridLayout Layout{3 * Shards, 2, 2};
    shard::ShardOptions Opts;
    Opts.Shards = Shards;
    Opts.Threads = 2;
    shard::ShardReport Last;
    const double Sec = bench::timeBestOf(Cfg.Reps, [&] {
      std::vector<rt::Box> Boxes = makeState(Layout);
      Last = shard::runSharded(Boxes, Layout, Steps, averageStep, Opts);
      if (!Last.Completed || Last.Recovered) {
        std::fprintf(stderr, "bench_shard_scaling: shards=%d did not run "
                             "cleanly:\n%s",
                     Shards, Last.toString().c_str());
        std::exit(1);
      }
    });
    bench::printRow({std::to_string(Shards), bench::fmtSeconds(Sec),
                     std::to_string(Last.Stats.Exchanges),
                     std::to_string(Last.Stats.Bytes), Last.FinalRung});
    Json.record("shard-weak-scaling", "shards" + std::to_string(Shards),
                Sec);
  }

  if (!Json.write())
    return 1;
  return 0;
}
