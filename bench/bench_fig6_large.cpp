//===- bench/bench_fig6_large.cpp -----------------------------------------===//
//
// Reproduces Figure 6(b): MiniFluxDiv schedule variants over large boxes
// (128^3 in the paper; 64^3 by default here) across a thread sweep. Paper
// shape: the fused schedules win, the storage-reduced fuse-all variant is
// the most performant untiled schedule, and the solid (SA) lines sit above
// their dashed (reduced) counterparts.
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include <cstdio>

using namespace lcdfg;
using namespace lcdfg::bench;
using namespace lcdfg::mfd;

int main() {
  Config Cfg = Config::fromEnvironment();
  Problem P = Cfg.largeProblem();
  std::printf("Figure 6(b): large boxes %d^3 x %d boxes (%ld cells), "
              "best of %d\n",
              P.BoxSize, P.NumBoxes, P.totalCells(), Cfg.Reps);

  std::vector<rt::Box> In = makeInputs(P, 0xf19b);
  std::vector<rt::Box> Out = makeOutputs(P);

  JsonReport Json;
  printHeader("Figure 6(b) — execution time vs threads", "");
  std::vector<std::string> Cols{"variant"};
  for (int T : Cfg.threadSweep())
    Cols.push_back("T=" + std::to_string(T));
  printRow(Cols);
  for (Variant V : allVariants()) {
    std::vector<std::string> Row{variantName(V)};
    for (int T : Cfg.threadSweep()) {
      RunConfig Run;
      Run.Threads = T;
      double S = timeVariant(V, In, Out, Run, Cfg.Reps);
      Json.record(variantName(V), "T=" + std::to_string(T), S);
      Row.push_back(fmtSeconds(S));
    }
    printRow(Row);
  }
  std::printf("\npaper shape: fuseAll-reduced is the fastest untiled "
              "schedule for large boxes and\nthe SA variants trail their "
              "reduced counterparts (dashed vs solid lines).\n");

  timeCompiledSchedules(P.BoxSize, Cfg.Reps, Json);
  Json.write();
  return 0;
}
