//===- bench/bench_serve.cpp ----------------------------------------------===//
//
// Serving-path benchmark: one in-process lcdfg-serve daemon, measured
// from the client side of a real unix socket so every row prices what a
// caller actually pays — framing, admission, cache, execution.
//
// Rows:
//   serve-fig6small  cold_p50 / warm_p50 seconds for the 3D flux chain at
//                    the fig6-small box scale. Cold requests carry
//                    cache:false (every one compiles); warm requests hit
//                    the primed cache. The cold/warm ratio is asserted
//                    >= 5x — that is the ISSUE's acceptance bar and the
//                    entire point of the plan cache.
//   serve-load       p50/p99/mean request seconds at 1, 4, and 8
//                    concurrent clients over a 6-key warm working set,
//                    plus informational idle_*_reqps and idle_*_hitrate
//                    keys (the idle_ prefix keeps bench_compare from
//                    gating throughput, which rises on faster hardware).
//
// Knobs: SERVE_REQS per-configuration request count (default 240),
// SERVE_SIZE chain extent (default 24), MFD_REPS cold/warm repetitions
// (default 3, via bench::Config).
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "bench_common.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace lcdfg;
using namespace lcdfg::serve;

namespace {

/// The MiniFluxDiv-shaped workload: a fused 3D flux/accumulate pair, the
/// serving-path stand-in for the fig6 small-box chain.
const char *Fig6SmallChain = R"(
#pragma omplc parallel(fuse)
{
#pragma omplc for domain(0:N, 0:N, 0:N) with (x, y, z) \
    write FX{(x,y,z)} read U{(x,y,z),(x+1,y,z)}
S1: FX(x,y,z) = flux(U(x,y,z), U(x+1,y,z));
#pragma omplc for domain(0:N, 0:N, 0:N) with (x, y, z) \
    write V{(x,y,z)} read FX{(x,y,z)}
S2: V(x,y,z) = acc(FX(x,y,z));
}
)";

long envLong(const char *Name, long Def) {
  const char *V = std::getenv(Name);
  return V && *V ? std::atol(V) : Def;
}

std::string runRequest(std::int64_t Size, bool Bypass) {
  std::string L = "{" + jsonField("chain", std::string_view(Fig6SmallChain)) +
                  "," + jsonField("size", Size);
  if (Bypass)
    L += "," + jsonField("cache", false);
  L += "}";
  return L;
}

double percentile(std::vector<double> V, double Q) {
  if (V.empty())
    return 0.0;
  std::sort(V.begin(), V.end());
  return V[static_cast<std::size_t>(Q * static_cast<double>(V.size() - 1))];
}

double mean(const std::vector<double> &V) {
  double S = 0.0;
  for (double X : V)
    S += X;
  return V.empty() ? 0.0 : S / static_cast<double>(V.size());
}

/// One timed request; exits the bench on any failure — a benchmark that
/// quietly times errors measures nothing.
std::string fmtRatio(double V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.4g", V);
  return Buf;
}

double timedRequest(Client &C, const std::string &Line) {
  using Clock = std::chrono::steady_clock;
  Clock::time_point T0 = Clock::now();
  auto R = C.request(Line, 120000);
  double Sec = std::chrono::duration<double>(Clock::now() - T0).count();
  if (!R || !R->find("ok") || !R->find("ok")->asBool()) {
    std::fprintf(stderr, "bench_serve: request failed: %s\n",
                 R ? "server error response" : R.error().toString().c_str());
    std::exit(1);
  }
  return Sec;
}

} // namespace

int main() {
  const bench::Config Cfg = bench::Config::fromEnvironment();
  const long Reqs = envLong("SERVE_REQS", 240);
  const std::int64_t Size = envLong("SERVE_SIZE", 24);
  bench::JsonReport Json;

  ServerOptions Opts;
  Opts.UnixPath =
      "/tmp/lcdfg-bench-" + std::to_string(static_cast<long>(::getpid())) +
      ".sock";
  Server Srv(Opts);
  if (!Srv.start().isOk()) {
    std::fprintf(stderr, "bench_serve: server failed to start\n");
    return 1;
  }

  auto Connect = [&] {
    auto C = Client::connectUnix(Opts.UnixPath);
    if (!C) {
      std::fprintf(stderr, "bench_serve: connect failed: %s\n",
                   C.error().toString().c_str());
      std::exit(1);
    }
    return std::move(*C);
  };

  // --- Cold vs warm on the fig6-small chain -------------------------------
  bench::printHeader("Serve latency, fig6-small 3D flux chain (N=" +
                         std::to_string(Size) + ")",
                     "row           p50        speedup");
  {
    Client C = Connect();
    std::vector<double> Cold, Warm;
    (void)timedRequest(C, runRequest(Size, false)); // Prime the cache.
    for (int R = 0; R < std::max(Cfg.Reps * 3, 9); ++R) {
      Cold.push_back(timedRequest(C, runRequest(Size, true)));
      Warm.push_back(timedRequest(C, runRequest(Size, false)));
    }
    double ColdP50 = percentile(Cold, 0.5), WarmP50 = percentile(Warm, 0.5);
    double Speedup = WarmP50 > 0.0 ? ColdP50 / WarmP50 : 0.0;
    bench::printRow({"cold", bench::fmtSeconds(ColdP50), ""});
    bench::printRow({"warm", bench::fmtSeconds(WarmP50), fmtRatio(Speedup) + "x"});
    Json.record("serve-fig6small", "cold_p50", ColdP50);
    Json.record("serve-fig6small", "warm_p50", WarmP50);
    Json.record("serve-fig6small", "idle_speedup", Speedup);
    if (Speedup < 5.0) {
      std::fprintf(stderr,
                   "bench_serve: warm-cache speedup %.2fx is below the 5x "
                   "acceptance bar (cold %.6fs, warm %.6fs)\n",
                   Speedup, ColdP50, WarmP50);
      return 1;
    }
  }

  // --- Concurrent-client sweep over a warm working set --------------------
  static const std::int64_t WorkingSet[] = {8, 10, 12, 14, 16, 20};
  {
    Client C = Connect();
    for (std::int64_t S : WorkingSet)
      (void)timedRequest(C, runRequest(S, false));
  }

  bench::printHeader("Serve throughput, 6-key warm working set (" +
                         std::to_string(Reqs) + " requests/config)",
                     "clients  p50        p99        req/s      hit-rate");
  for (int Clients : {1, 4, 8}) {
    ServerStats Before = Srv.stats();
    std::vector<std::vector<double>> PerThread(
        static_cast<std::size_t>(Clients));
    std::atomic<long> Next{0};
    using Clock = std::chrono::steady_clock;
    Clock::time_point T0 = Clock::now();
    std::vector<std::thread> Ts;
    for (int T = 0; T < Clients; ++T)
      Ts.emplace_back([&, T] {
        Client C = Connect();
        std::vector<double> &Lat = PerThread[static_cast<std::size_t>(T)];
        for (long I = Next.fetch_add(1); I < Reqs; I = Next.fetch_add(1)) {
          std::int64_t S =
              WorkingSet[static_cast<std::size_t>(I) % std::size(WorkingSet)];
          Lat.push_back(timedRequest(C, runRequest(S, false)));
        }
      });
    for (std::thread &T : Ts)
      T.join();
    double Elapsed = std::chrono::duration<double>(Clock::now() - T0).count();

    std::vector<double> All;
    for (const std::vector<double> &L : PerThread)
      All.insert(All.end(), L.begin(), L.end());
    ServerStats After = Srv.stats();
    double HitRate =
        After.Admitted > Before.Admitted
            ? static_cast<double>(After.Hits - Before.Hits) /
                  static_cast<double>(After.Admitted - Before.Admitted)
            : 0.0;
    double ReqPerSec =
        Elapsed > 0.0 ? static_cast<double>(All.size()) / Elapsed : 0.0;
    std::string Tag = "c" + std::to_string(Clients);
    bench::printRow({std::to_string(Clients),
                     bench::fmtSeconds(percentile(All, 0.5)),
                     bench::fmtSeconds(percentile(All, 0.99)),
                     fmtRatio(ReqPerSec), fmtRatio(HitRate)});
    Json.record("serve-load", Tag + "_p50", percentile(All, 0.5));
    Json.record("serve-load", Tag + "_p99", percentile(All, 0.99));
    Json.record("serve-load", Tag + "_mean", mean(All));
    Json.record("serve-load", "idle_" + Tag + "_reqps", ReqPerSec);
    Json.record("serve-load", "idle_" + Tag + "_hitrate", HitRate);
  }

  Srv.stop();
  if (!Json.write())
    return 1;
  return 0;
}
