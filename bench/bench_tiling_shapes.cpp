//===- bench/bench_tiling_shapes.cpp --------------------------------------===//
//
// Reproduces Figure 5: the six tiling schedules of the 1D Fx -> Dx chain
// with nine faces, eight cells, and tile size four — classic tiling,
// overlapped tiling (Halide/PolyMage shape), and the shifted/fused
// variants, with redundancy accounting.
//
//===----------------------------------------------------------------------===//

#include "tiling/Tiling.h"

#include "bench_common.h"
#include "graph/GraphBuilder.h"
#include "jit/JitEngine.h"
#include "storage/ReuseDistance.h"

#include <cstdio>

using namespace lcdfg;
using namespace lcdfg::tiling;
using poly::AffineExpr;
using poly::BoxSet;
using poly::Dim;

namespace {

ir::LoopChain figure5Chain() {
  ir::LoopChain Chain("fig5");
  AffineExpr N = AffineExpr::var("N");
  ir::LoopNest Fx;
  Fx.Name = "Fx";
  Fx.Domain = BoxSet({Dim{"i", AffineExpr(0), N}});
  Fx.Write = ir::Access{"F", {{0}}};
  Fx.Reads = {ir::Access{"in", {{-1}, {0}}}};
  Chain.addNest(Fx);
  ir::LoopNest Dx;
  Dx.Name = "Dx";
  Dx.Domain = BoxSet({Dim{"i", AffineExpr(0), N - AffineExpr(1)}});
  Dx.Write = ir::Access{"out", {{0}}};
  Dx.Reads = {ir::Access{"F", {{0}, {1}}}};
  Chain.addNest(Dx);
  Chain.finalize();
  return Chain;
}

void printClassic(const ir::LoopChain &Chain, const ParamEnv &Env) {
  std::printf("\n-- Figure 5(b): classic tiling (barrier between stages) "
              "--\n");
  for (unsigned NI = 0; NI < Chain.numNests(); ++NI) {
    auto Tiles = classicTiles(Chain.nest(NI).Domain, {4}, Env);
    std::printf("%s:", Chain.nest(NI).Name.c_str());
    for (std::size_t T = 0; T < Tiles.size(); ++T) {
      std::printf(" |");
      Tiles[T].forEachPoint(Env, [](const std::vector<std::int64_t> &P) {
        std::printf(" %lld", static_cast<long long>(P[0]));
      });
    }
    std::printf("\n");
  }
}

void batchedSum2(double *W, const double *const *R, const std::int64_t *S,
                 std::int64_t WS, std::int64_t N) {
  const double *R0 = R[0], *R1 = R[1];
  const std::int64_t S0 = S[0], S1 = S[1];
  for (std::int64_t I = 0; I < N; ++I)
    W[I * WS] = W[I * WS] + R0[I * S0] + R1[I * S1];
}

/// Times the fig5 chain at a benchmark-sized N: the series-of-loops plan
/// and the overlapped tiling, each with row batching on and off.
void timeFig5Schedules(std::int64_t N, std::int64_t TileSize, int Reps,
                       bench::JsonReport &Json) {
  ir::LoopChain Chain = figure5Chain();
  codegen::KernelRegistry Kernels;
  int Sum = Kernels.add(
      [](const std::vector<double> &Reads, double Current) {
        return Current + Reads[0] + Reads[1];
      },
      batchedSum2,
      codegen::current() + codegen::read(0) + codegen::read(1));
  Chain.nest(0).KernelId = Sum;
  Chain.nest(1).KernelId = Sum;

  exec::ParamEnv Env{{"N", N}};
  graph::Graph G = graph::buildGraph(Chain);
  storage::StoragePlan SPlan =
      storage::StoragePlan::build(G, /*UseAllocation=*/false);
  storage::ConcreteStorage Store(SPlan, Env);
  std::vector<double> &InBuf = Store.spaceOf("in");
  for (std::size_t I = 0; I < InBuf.size(); ++I)
    InBuf[I] = 0.001 * static_cast<double>((I * 2654435761u) % 1000u);

  bench::printHeader("fig5 chain timing at N=" + std::to_string(N) +
                         ", tile " + std::to_string(TileSize) +
                         " — row batching on vs off",
                     "schedule / batched_off batched_on speedup");
  auto report = [&](const std::string &Name,
                    const exec::ExecutionPlan &Plan) {
    exec::RunOptions Opts;
    Opts.Batched = false;
    double Off = bench::timePlanRun(Plan, Kernels, Store, Opts, Reps);
    Opts.Batched = true;
    double On = bench::timePlanRun(Plan, Kernels, Store, Opts, Reps);
    Json.record(Name, "batched_off", Off);
    Json.record(Name, "batched_on", On);
    char Ratio[32];
    std::snprintf(Ratio, sizeof(Ratio), "%.2fx", Off / On);
    bench::printRow(
        {Name, bench::fmtSeconds(Off), bench::fmtSeconds(On), Ratio});
    // Optional jit- row, mirroring timeCompiledSchedules: absent (and not
    // gated) on machines without a host compiler.
    if (exec::effectiveKernelMode(exec::KernelMode::Jit) ==
            exec::KernelMode::Jit &&
        jit::Engine::global().available()) {
      Opts.Kernels = exec::KernelMode::Jit;
      double J = bench::timePlanRun(Plan, Kernels, Store, Opts, Reps);
      Json.record("jit-" + Name, "batched_jit", J);
      std::snprintf(Ratio, sizeof(Ratio), "%.2fx vs interp", On / J);
      bench::printRow({"jit-" + Name, bench::fmtSeconds(J), Ratio});
    }
  };

  exec::ExecutionPlan Series =
      exec::ExecutionPlan::fromChain(Chain, Store, Env, &G);
  report("series", Series);

  ChainTiling Tiling = overlappedTiling(Chain, {TileSize}, Env);
  exec::ExecutionPlan Tiled =
      exec::ExecutionPlan::fromTiling(Chain, Tiling, Store, Env, &G);
  report("overlapped-tile" + std::to_string(TileSize), Tiled);
}

} // namespace

int main() {
  ir::LoopChain Chain = figure5Chain();
  ParamEnv Env{{"N", 8}};

  std::printf("Figure 5 reproduction: Fx (9 faces) -> Dx (8 cells), tile "
              "size 4.\n");
  std::printf("\n-- Figure 5(a): original schedule --\nFx:");
  Chain.nest(0).Domain.forEachPoint(
      Env, [](const std::vector<std::int64_t> &P) {
        std::printf(" %lld", static_cast<long long>(P[0]));
      });
  std::printf("\nDx:");
  Chain.nest(1).Domain.forEachPoint(
      Env, [](const std::vector<std::int64_t> &P) {
        std::printf(" %lld", static_cast<long long>(P[0]));
      });
  std::printf("\n");

  printClassic(Chain, Env);

  ChainTiling Overlapped = overlappedTiling(Chain, {4}, Env);
  std::printf("\n-- Figure 5(c)/(f): overlapped tiling (each tile self-"
              "contained) --\n%s",
              renderTiling1D(Chain, Overlapped, Env).c_str());
  std::printf("redundant computation: %.3fx (Fx executed %lld of %lld "
              "required)\n",
              Overlapped.redundancy(),
              static_cast<long long>(Overlapped.ExecutedPoints.at(0)),
              static_cast<long long>(Overlapped.RequiredPoints.at(0)));
  std::printf("\nintra-tile schedule distinguishes the two variants:\n"
              "  fusion of tiles   (5c): full Fx tile buffer, vectorizable "
              "(Halide/PolyMage)\n"
              "  fusion within tiles (5f): shifted Fx/Dx interleaved, two "
              "scalars of storage\n");

  std::printf("\n-- tile-size sweep (redundancy) --\n");
  for (std::int64_t T : {2, 3, 4, 6, 8}) {
    ChainTiling CT = overlappedTiling(Chain, {T}, Env);
    std::printf("tile %lld: %zu tiles, redundancy %.3fx\n",
                static_cast<long long>(T), CT.Tiles.size(),
                CT.redundancy());
  }

  bench::Config Cfg = bench::Config::fromEnvironment();
  bench::JsonReport Json;
  timeFig5Schedules(/*N=*/Cfg.TotalCells, /*TileSize=*/4096, Cfg.Reps,
                    Json);
  Json.write();
  return 0;
}
