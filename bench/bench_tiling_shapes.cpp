//===- bench/bench_tiling_shapes.cpp --------------------------------------===//
//
// Reproduces Figure 5: the six tiling schedules of the 1D Fx -> Dx chain
// with nine faces, eight cells, and tile size four — classic tiling,
// overlapped tiling (Halide/PolyMage shape), and the shifted/fused
// variants, with redundancy accounting.
//
//===----------------------------------------------------------------------===//

#include "tiling/Tiling.h"

#include <cstdio>

using namespace lcdfg;
using namespace lcdfg::tiling;
using poly::AffineExpr;
using poly::BoxSet;
using poly::Dim;

namespace {

ir::LoopChain figure5Chain() {
  ir::LoopChain Chain("fig5");
  AffineExpr N = AffineExpr::var("N");
  ir::LoopNest Fx;
  Fx.Name = "Fx";
  Fx.Domain = BoxSet({Dim{"i", AffineExpr(0), N}});
  Fx.Write = ir::Access{"F", {{0}}};
  Fx.Reads = {ir::Access{"in", {{-1}, {0}}}};
  Chain.addNest(Fx);
  ir::LoopNest Dx;
  Dx.Name = "Dx";
  Dx.Domain = BoxSet({Dim{"i", AffineExpr(0), N - AffineExpr(1)}});
  Dx.Write = ir::Access{"out", {{0}}};
  Dx.Reads = {ir::Access{"F", {{0}, {1}}}};
  Chain.addNest(Dx);
  Chain.finalize();
  return Chain;
}

void printClassic(const ir::LoopChain &Chain, const ParamEnv &Env) {
  std::printf("\n-- Figure 5(b): classic tiling (barrier between stages) "
              "--\n");
  for (unsigned NI = 0; NI < Chain.numNests(); ++NI) {
    auto Tiles = classicTiles(Chain.nest(NI).Domain, {4}, Env);
    std::printf("%s:", Chain.nest(NI).Name.c_str());
    for (std::size_t T = 0; T < Tiles.size(); ++T) {
      std::printf(" |");
      Tiles[T].forEachPoint(Env, [](const std::vector<std::int64_t> &P) {
        std::printf(" %lld", static_cast<long long>(P[0]));
      });
    }
    std::printf("\n");
  }
}

} // namespace

int main() {
  ir::LoopChain Chain = figure5Chain();
  ParamEnv Env{{"N", 8}};

  std::printf("Figure 5 reproduction: Fx (9 faces) -> Dx (8 cells), tile "
              "size 4.\n");
  std::printf("\n-- Figure 5(a): original schedule --\nFx:");
  Chain.nest(0).Domain.forEachPoint(
      Env, [](const std::vector<std::int64_t> &P) {
        std::printf(" %lld", static_cast<long long>(P[0]));
      });
  std::printf("\nDx:");
  Chain.nest(1).Domain.forEachPoint(
      Env, [](const std::vector<std::int64_t> &P) {
        std::printf(" %lld", static_cast<long long>(P[0]));
      });
  std::printf("\n");

  printClassic(Chain, Env);

  ChainTiling Overlapped = overlappedTiling(Chain, {4}, Env);
  std::printf("\n-- Figure 5(c)/(f): overlapped tiling (each tile self-"
              "contained) --\n%s",
              renderTiling1D(Chain, Overlapped, Env).c_str());
  std::printf("redundant computation: %.3fx (Fx executed %lld of %lld "
              "required)\n",
              Overlapped.redundancy(),
              static_cast<long long>(Overlapped.ExecutedPoints.at(0)),
              static_cast<long long>(Overlapped.RequiredPoints.at(0)));
  std::printf("\nintra-tile schedule distinguishes the two variants:\n"
              "  fusion of tiles   (5c): full Fx tile buffer, vectorizable "
              "(Halide/PolyMage)\n"
              "  fusion within tiles (5f): shifted Fx/Dx interleaved, two "
              "scalars of storage\n");

  std::printf("\n-- tile-size sweep (redundancy) --\n");
  for (std::int64_t T : {2, 3, 4, 6, 8}) {
    ChainTiling CT = overlappedTiling(Chain, {T}, Env);
    std::printf("tile %lld: %zu tiles, redundancy %.3fx\n",
                static_cast<long long>(T), CT.Tiles.size(),
                CT.redundancy());
  }
  return 0;
}
