//===- bench/bench_fig6_small.cpp -----------------------------------------===//
//
// Reproduces Figure 6(a): MiniFluxDiv schedule variants over small (16^3)
// boxes across a thread sweep. Paper shape: the series-of-loops baseline is
// hard to beat at this size; fuse-among-directions is the only schedule
// that improves on it.
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include <cstdio>

using namespace lcdfg;
using namespace lcdfg::bench;
using namespace lcdfg::mfd;

int main() {
  Config Cfg = Config::fromEnvironment();
  Problem P = Cfg.smallProblem();
  std::printf("Figure 6(a): small boxes %d^3 x %d boxes (%ld cells), "
              "best of %d\n",
              P.BoxSize, P.NumBoxes, P.totalCells(), Cfg.Reps);

  std::vector<rt::Box> In = makeInputs(P, 0xf19a);
  std::vector<rt::Box> Out = makeOutputs(P);

  JsonReport Json;
  printHeader("Figure 6(a) — execution time vs threads",
              "variant / threads ...");
  std::vector<std::string> Cols{"variant"};
  for (int T : Cfg.threadSweep())
    Cols.push_back("T=" + std::to_string(T));
  printRow(Cols);
  for (Variant V : allVariants()) {
    std::vector<std::string> Row{variantName(V)};
    for (int T : Cfg.threadSweep()) {
      RunConfig Run;
      Run.Threads = T;
      double S = timeVariant(V, In, Out, Run, Cfg.Reps);
      Json.record(variantName(V), "T=" + std::to_string(T), S);
      Row.push_back(fmtSeconds(S));
    }
    printRow(Row);
  }
  std::printf("\npaper shape: at 16^3, fuse-among is the only variant "
              "beating the series baseline;\nstorage reduction matters "
              "little because every temporary already fits in cache.\n");

  // Scheduler head-to-head on the two extremes of task granularity: the
  // single-assignment baseline (widest graph) and the fused+reduced
  // schedule (heaviest per-task work).
  timeSchedulerStrategies(Variant::SeriesSA, In, Out, Cfg, Json);
  timeSchedulerStrategies(Variant::FuseAllReduced, In, Out, Cfg, Json);

  timeCompiledSchedules(P.BoxSize, Cfg.Reps, Json);
  Json.write();
  return 0;
}
