//===- bench/bench_costmodel.cpp ------------------------------------------===//
//
// Reproduces the cost-model content of Figures 3, 7, 8 and 9: per-row data
// read, row widths, S_R and S_c for each 2D MiniFluxDiv schedule, next to
// the values printed in the paper. Also emits the Graphviz dot for each
// graph (the M2DFG visual interface).
//
//===----------------------------------------------------------------------===//

#include "graph/CostModel.h"
#include "graph/DotExport.h"
#include "graph/GraphBuilder.h"
#include "minifluxdiv/Spec.h"
#include "storage/LivenessAllocator.h"
#include "storage/ReuseDistance.h"

#include <cstdio>
#include <functional>

using namespace lcdfg;
using namespace lcdfg::graph;

namespace {

void report(const char *Figure, const char *Name, const char *PaperSR,
            unsigned PaperSC,
            const std::function<void(Graph &)> &Recipe) {
  ir::LoopChain Chain = mfd::buildChain2D();
  Graph G = buildGraph(Chain);
  if (Recipe)
    Recipe(G);
  CostReport Cost = computeCost(G);
  std::printf("\n== %s: %s ==\n", Figure, Name);
  std::printf("%s", Cost.toString().c_str());
  std::printf("paper: S_R = %s, S_c = %u\n", PaperSR, PaperSC);
  storage::Allocation Alloc = storage::allocateSpaces(G);
  std::printf("temporary allocation: %s (single-assignment %s)\n",
              Alloc.Total.toString().c_str(),
              Alloc.SsaTotal.toString().c_str());
  std::printf("--- dot ---\n%s", toDot(G, {false, Name}).c_str());
}

} // namespace

int main() {
  std::printf("Cost-model reproduction of Figures 3, 7, 8, 9 (2D, four "
              "components).\nOur model computes S_R mechanically from the "
              "graph; the paper's row costs match, its printed totals "
              "differ slightly (see EXPERIMENTS.md).\n");

  report("Figure 3", "series of loops", "30N^2+56N", 2, nullptr);
  report("Figure 7", "fuse among directions", "22N^2+46N", 2,
         [](Graph &G) { mfd::applyFuseAmongDirections(G); });
  report("Figure 8", "fuse within directions", "16N^2+46N+14", 2,
         [](Graph &G) {
           mfd::applyFuseWithinDirections(G);
           storage::reduceStorage(G);
         });
  report("Figure 9", "fuse all levels", "14N^2+44N+11", 2, [](Graph &G) {
    mfd::applyFuseAllLevels(G);
    storage::reduceStorage(G);
  });
  return 0;
}
