//===- bench/bench_micro.cpp ----------------------------------------------===//
//
// Google-benchmark microbenchmarks of the library machinery itself: graph
// construction, cost evaluation, transformation recipes, storage planning,
// and the schedule interpreter. These measure the compiler-side costs of
// the approach rather than the generated code.
//
//===----------------------------------------------------------------------===//

#include "codegen/Generator.h"
#include "codegen/Interpreter.h"
#include "graph/CostModel.h"
#include "graph/GraphBuilder.h"
#include "minifluxdiv/Spec.h"
#include "storage/LivenessAllocator.h"
#include "storage/ReuseDistance.h"
#include "storage/StorageMap.h"

#include <benchmark/benchmark.h>

using namespace lcdfg;
using namespace lcdfg::graph;

static void BM_BuildChain3D(benchmark::State &State) {
  for (auto _ : State) {
    ir::LoopChain Chain = mfd::buildChain3D();
    benchmark::DoNotOptimize(Chain.numNests());
  }
}
BENCHMARK(BM_BuildChain3D);

static void BM_BuildGraph(benchmark::State &State) {
  ir::LoopChain Chain = mfd::buildChain3D();
  for (auto _ : State) {
    Graph G = buildGraph(Chain);
    benchmark::DoNotOptimize(G.numStmtNodes());
  }
}
BENCHMARK(BM_BuildGraph);

static void BM_CostModel(benchmark::State &State) {
  ir::LoopChain Chain = mfd::buildChain3D();
  Graph G = buildGraph(Chain);
  for (auto _ : State) {
    CostReport Cost = computeCost(G);
    benchmark::DoNotOptimize(Cost.TotalRead.degree());
  }
}
BENCHMARK(BM_CostModel);

static void BM_FuseAllRecipe(benchmark::State &State) {
  ir::LoopChain Chain = mfd::buildChain3D();
  for (auto _ : State) {
    Graph G = buildGraph(Chain);
    mfd::applyFuseAllLevels(G);
    storage::reduceStorage(G);
    benchmark::DoNotOptimize(G.maxRow());
  }
}
BENCHMARK(BM_FuseAllRecipe);

static void BM_LivenessAllocation(benchmark::State &State) {
  ir::LoopChain Chain = mfd::buildChain3D();
  Graph G = buildGraph(Chain);
  for (auto _ : State) {
    storage::Allocation A = storage::allocateSpaces(G);
    benchmark::DoNotOptimize(A.Spaces.size());
  }
}
BENCHMARK(BM_LivenessAllocation);

static void BM_GenerateAst(benchmark::State &State) {
  ir::LoopChain Chain = mfd::buildChain3D();
  Graph G = buildGraph(Chain);
  for (auto _ : State) {
    codegen::AstPtr Root = codegen::generate(G);
    benchmark::DoNotOptimize(Root->countStatements());
  }
}
BENCHMARK(BM_GenerateAst);

static void BM_InterpretSeries2D(benchmark::State &State) {
  ir::LoopChain Chain = mfd::buildChain2D();
  codegen::KernelRegistry Kernels;
  mfd::registerKernels(Chain, Kernels);
  Graph G = buildGraph(Chain);
  std::map<std::string, std::int64_t, std::less<>> Env{
      {"N", State.range(0)}};
  storage::StoragePlan Plan = storage::StoragePlan::build(G);
  storage::ConcreteStorage Store(Plan, Env);
  codegen::AstPtr Root = codegen::generate(G);
  for (auto _ : State) {
    codegen::execute(G, *Root, Kernels, Store, Env);
    benchmark::DoNotOptimize(Store.at("out_rho", {0, 0}));
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_InterpretSeries2D)->Arg(8)->Arg(16)->Arg(32);
