//===- bench/bench_fig12_frameworks.cpp -----------------------------------===//
//
// Reproduces Figure 12: series of loops, our overlapped tiling, and the
// Halide-/PolyMage-style comparators on large boxes. The comparators are
// restricted to within-box parallelism as the paper notes; our variants
// run both over-box and within-box flavors for the fair comparison of
// Section 5.5. Paper shape: the M2DFG-guided overlapped tiling variant
// outperforms both frameworks' autotuned schedules.
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "baselines/HalideStyle.h"
#include "baselines/PolyMageStyle.h"

#include <cstdio>

using namespace lcdfg;
using namespace lcdfg::bench;
using namespace lcdfg::mfd;

int main() {
  Config Cfg = Config::fromEnvironment();
  Problem P = Cfg.largeProblem();
  std::printf("Figure 12: framework comparison, large boxes %d^3 x %d\n",
              P.BoxSize, P.NumBoxes);
  std::vector<rt::Box> In = makeInputs(P, 0xf1c0);
  std::vector<rt::Box> Out = makeOutputs(P);

  printHeader("Figure 12 — execution time vs threads",
              "threads | series | ours(overBoxes) | ours(withinBoxes) | "
              "halide-style | polymage-style");
  for (int T : Cfg.threadSweep()) {
    RunConfig Over;
    Over.Threads = T;
    RunConfig Within;
    Within.Threads = T;
    Within.ParallelOverBoxes = false; // tiles parallelized inside runVariant?
    double TSeries =
        timeVariant(Variant::SeriesReduced, In, Out, Over, Cfg.Reps);
    double TOursOver =
        timeVariant(Variant::OverlapWithinTiles, In, Out, Over, Cfg.Reps);
    // Within-box flavor of ours: boxes sequential (thread use inside the
    // box is future work on this container; reported for completeness).
    double TOursWithin =
        timeVariant(Variant::OverlapWithinTiles, In, Out, Within, Cfg.Reps);
    double THalide = timeBestOf(Cfg.Reps, [&] {
      baselines::runHalideStyle(In, Out, T);
    });
    double TPolyMage = timeBestOf(Cfg.Reps, [&] {
      baselines::runPolyMageStyle(In, Out, T);
    });
    printRow({"T=" + std::to_string(T), fmtSeconds(TSeries),
              fmtSeconds(TOursOver), fmtSeconds(TOursWithin),
              fmtSeconds(THalide), fmtSeconds(TPolyMage)});
  }
  std::printf("\npaper shape: both of our parallelization flavors "
              "outperform the Halide- and PolyMage-style schedules; their "
              "full-tile temporaries cost memory traffic that the fused "
              "intra-tile schedule avoids.\n");
  return 0;
}
