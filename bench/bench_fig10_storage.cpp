//===- bench/bench_fig10_storage.cpp --------------------------------------===//
//
// Reproduces Figure 10: execution time of each schedule with and without
// the storage-mapping optimizations (light vs dark bars), for small and
// large boxes, alongside the temporary-storage footprint the reduction
// removes.
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include <cstdio>

using namespace lcdfg;
using namespace lcdfg::bench;
using namespace lcdfg::mfd;

namespace {

void runCase(const char *Label, const Problem &P, const Config &Cfg) {
  std::vector<rt::Box> In = makeInputs(P, 0xf1a0);
  std::vector<rt::Box> Out = makeOutputs(P);
  RunConfig Run;
  Run.Threads = Cfg.MaxThreads;

  struct Pair {
    const char *Name;
    Variant SA;
    Variant Reduced;
  };
  const Pair Pairs[] = {
      {"series", Variant::SeriesSA, Variant::SeriesReduced},
      {"fuseWithin", Variant::FuseWithinSA, Variant::FuseWithinReduced},
      {"fuseAll", Variant::FuseAllSA, Variant::FuseAllReduced},
  };

  printHeader(std::string("Figure 10 — ") + Label,
              "schedule | original(SA) | reduced | speedup | temp elements "
              "SA -> reduced");
  for (const Pair &Q : Pairs) {
    double TSA = timeVariant(Q.SA, In, Out, Run, Cfg.Reps);
    double TRed = timeVariant(Q.Reduced, In, Out, Run, Cfg.Reps);
    char Speed[32];
    std::snprintf(Speed, sizeof(Speed), "%.2fx", TSA / TRed);
    printRow({Q.Name, fmtSeconds(TSA), fmtSeconds(TRed), Speed,
              std::to_string(temporaryElements(Q.SA, P.BoxSize)) + " -> " +
                  std::to_string(temporaryElements(Q.Reduced, P.BoxSize))});
  }
}

} // namespace

int main() {
  Config Cfg = Config::fromEnvironment();
  std::printf("Figure 10: storage-mapping optimizations (dark bars) vs "
              "schedule-only variants (light bars)\n");
  runCase("small boxes", Cfg.smallProblem(), Cfg);
  runCase("large boxes", Cfg.largeProblem(), Cfg);
  std::printf("\npaper shape: the reductions pay off most clearly for the "
              "large boxes.\n");
  return 0;
}
