//===- bench/bench_common.h - Shared benchmark harness ----------*- C++ -*-===//
//
// Part of the lcdfg project: a reproduction of "Transforming Loop Chains via
// Macro Dataflow Graphs" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared pieces of the figure-reproduction harnesses: wall-clock timing,
/// environment-variable problem scaling, and row printing. Problem sizes
/// default to container-friendly values and scale up via:
///
///   MFD_CELLS      total cells per run        (default 2^21 ~ 2M)
///   MFD_LARGE_BOX  edge of the "large" boxes  (default 64; paper used 128)
///   MFD_REPS       timing repetitions         (default 3)
///   MFD_THREADS    max thread count swept     (default 4)
///
//===----------------------------------------------------------------------===//

#ifndef LCDFG_BENCH_BENCH_COMMON_H
#define LCDFG_BENCH_BENCH_COMMON_H

#include "exec/PlanRunner.h"
#include "minifluxdiv/Variants.h"

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace lcdfg {
namespace bench {

/// Environment-scaled configuration shared by the MiniFluxDiv figures.
struct Config {
  long TotalCells;
  int LargeBox;
  int Reps;
  int MaxThreads;

  static Config fromEnvironment();

  mfd::Problem smallProblem() const {
    return mfd::Problem::smallBoxes(TotalCells);
  }
  mfd::Problem largeProblem() const {
    return mfd::Problem::largeBoxes(TotalCells, LargeBox);
  }
  std::vector<int> threadSweep() const;
};

/// Modulo-window widening factor used by the fuseAll-reduced compiled
/// schedule (widened windows let row batching cover whole rows; exact
/// windows would cap segments at the producer/consumer lag). Recorded in
/// the reports' "_meta" block.
inline constexpr unsigned FuseAllModuloWiden = 8;

/// Best-of-Reps wall-clock seconds of \p Fn (one warm-up first).
double timeBestOf(int Reps, const std::function<void()> &Fn);

/// Times one variant over \p In / \p Out.
double timeVariant(mfd::Variant V, const std::vector<rt::Box> &In,
                   std::vector<rt::Box> &Out, const mfd::RunConfig &Run,
                   int Reps);

/// Prints a header line followed by aligned rows; every harness routes its
/// output through this so the figures read uniformly.
void printHeader(const std::string &Title, const std::string &Columns);
void printRow(const std::vector<std::string> &Cells);

/// Formats seconds with 4 significant digits.
std::string fmtSeconds(double S);

/// Accumulates variant -> measurement-key -> seconds rows and writes them
/// as JSON to the path named by the BENCH_JSON environment variable (a
/// no-op when the variable is unset), so benchmark runs leave a machine-
/// readable trajectory next to the human-readable tables.
///
/// Every report opens with a "_meta" variant describing the run
/// (compiler, commit from the BENCH_COMMIT environment variable, and the
/// MFD_* problem-size knobs), which tools/bench_compare skips when it
/// diffs two reports.
class JsonReport {
public:
  void record(const std::string &Variant, const std::string &Key,
              double Seconds);
  /// Writes the report; returns false when BENCH_JSON is set but the file
  /// cannot be written.
  bool write() const;

private:
  std::vector<std::string> Order;
  std::map<std::string, std::map<std::string, double>> Rows;
};

/// Best-of-Reps seconds of one runPlan invocation (one warm-up first).
double timePlanRun(const exec::ExecutionPlan &Plan,
                   const codegen::KernelRegistry &Kernels,
                   storage::ConcreteStorage &Store,
                   const exec::RunOptions &Opts, int Reps);

/// Times the compiled-schedule execution paths of the 3D MiniFluxDiv
/// chain at box size \p N — the series-of-loops plan and the fuse-all +
/// reduced-storage AST plan — with row batching on and off, printing a
/// table and recording "batched_on"/"batched_off" rows into \p Json under
/// "series" and "fuseAll-reduced".
void timeCompiledSchedules(std::int64_t N, int Reps, JsonReport &Json);

/// Head-to-head task-graph scheduler comparison for one variant: times the
/// parallel-over-boxes plan under both strategies at T=2 and T=MaxThreads,
/// printing a table with per-strategy max idle shares and recording
/// "<sched>_T<n>" seconds plus informational "idle_<sched>_T<n>" idle
/// shares (tools/bench_compare prints "idle"-prefixed keys but never gates
/// them) under the "sched-<variant>" report row.
void timeSchedulerStrategies(mfd::Variant V, const std::vector<rt::Box> &In,
                             std::vector<rt::Box> &Out, const Config &Cfg,
                             JsonReport &Json);

} // namespace bench
} // namespace lcdfg

#endif // LCDFG_BENCH_BENCH_COMMON_H
